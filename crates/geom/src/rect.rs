use crate::Point;

/// A closed axis-aligned rectangle `[min_x, max_x] × [min_y, max_y]`.
///
/// Used for query windows (`w(r)`), grid cells, and bounding boxes.
/// Containment is **closed** on all four sides, matching the paper's
/// `w(r) ∩ s` predicate ("a point s exists in w(r)").
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Rect {
    /// Left x coordinate (`w(r).xmin` in the paper).
    pub min_x: f64,
    /// Bottom y coordinate.
    pub min_y: f64,
    /// Right x coordinate.
    pub max_x: f64,
    /// Top y coordinate.
    pub max_y: f64,
}

impl Rect {
    /// Creates a rectangle from its corner coordinates.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `min > max` on either axis.
    #[inline]
    pub fn new(min_x: f64, min_y: f64, max_x: f64, max_y: f64) -> Self {
        debug_assert!(min_x <= max_x, "min_x {min_x} > max_x {max_x}");
        debug_assert!(min_y <= max_y, "min_y {min_y} > max_y {max_y}");
        Rect {
            min_x,
            min_y,
            max_x,
            max_y,
        }
    }

    /// The query window `w(r)` of half-extent `l` centred at `center`:
    /// `[r.x − l, r.x + l] × [r.y − l, r.y + l]` (paper §V-A).
    #[inline]
    pub fn window(center: Point, half_extent: f64) -> Self {
        debug_assert!(half_extent >= 0.0, "half_extent must be non-negative");
        Rect {
            min_x: center.x - half_extent,
            min_y: center.y - half_extent,
            max_x: center.x + half_extent,
            max_y: center.y + half_extent,
        }
    }

    /// `true` iff `p` lies inside the closed rectangle.
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        self.min_x <= p.x && p.x <= self.max_x && self.min_y <= p.y && p.y <= self.max_y
    }

    /// `true` iff the two closed rectangles share at least one point.
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        self.min_x <= other.max_x
            && other.min_x <= self.max_x
            && self.min_y <= other.max_y
            && other.min_y <= self.max_y
    }

    /// `true` iff `other` is entirely inside `self`.
    #[inline]
    pub fn contains_rect(&self, other: &Rect) -> bool {
        self.min_x <= other.min_x
            && other.max_x <= self.max_x
            && self.min_y <= other.min_y
            && other.max_y <= self.max_y
    }

    /// Intersection of two rectangles, or `None` if they are disjoint.
    #[inline]
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        let min_x = self.min_x.max(other.min_x);
        let min_y = self.min_y.max(other.min_y);
        let max_x = self.max_x.min(other.max_x);
        let max_y = self.max_y.min(other.max_y);
        (min_x <= max_x && min_y <= max_y).then_some(Rect {
            min_x,
            min_y,
            max_x,
            max_y,
        })
    }

    /// Width (x extent) of the rectangle.
    #[inline]
    pub fn width(&self) -> f64 {
        self.max_x - self.min_x
    }

    /// Height (y extent) of the rectangle.
    #[inline]
    pub fn height(&self) -> f64 {
        self.max_y - self.min_y
    }

    /// Area of the rectangle.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Centre point of the rectangle.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new(
            self.min_x + self.width() * 0.5,
            self.min_y + self.height() * 0.5,
        )
    }

    /// Minimum coordinate along `axis` (0 = x, 1 = y).
    #[inline]
    pub fn min_coord(&self, axis: usize) -> f64 {
        if axis == 0 {
            self.min_x
        } else {
            self.min_y
        }
    }

    /// Maximum coordinate along `axis` (0 = x, 1 = y).
    #[inline]
    pub fn max_coord(&self, axis: usize) -> f64 {
        if axis == 0 {
            self.max_x
        } else {
            self.max_y
        }
    }

    /// Smallest rectangle covering `self` and `p`.
    #[inline]
    pub fn grown_to(&self, p: Point) -> Rect {
        Rect {
            min_x: self.min_x.min(p.x),
            min_y: self.min_y.min(p.y),
            max_x: self.max_x.max(p.x),
            max_y: self.max_y.max(p.y),
        }
    }

    /// A degenerate rectangle containing only `p`.
    #[inline]
    pub fn degenerate(p: Point) -> Rect {
        Rect {
            min_x: p.x,
            min_y: p.y,
            max_x: p.x,
            max_y: p.y,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_is_centered_square() {
        let w = Rect::window(Point::new(10.0, 20.0), 5.0);
        assert_eq!(w, Rect::new(5.0, 15.0, 15.0, 25.0));
        assert_eq!(w.width(), 10.0);
        assert_eq!(w.height(), 10.0);
        assert_eq!(w.center(), Point::new(10.0, 20.0));
    }

    #[test]
    fn containment_is_closed() {
        let w = Rect::new(0.0, 0.0, 10.0, 10.0);
        // all four edges and corners are inside
        assert!(w.contains(Point::new(0.0, 0.0)));
        assert!(w.contains(Point::new(10.0, 10.0)));
        assert!(w.contains(Point::new(0.0, 10.0)));
        assert!(w.contains(Point::new(5.0, 0.0)));
        assert!(w.contains(Point::new(5.0, 5.0)));
        // just outside
        assert!(!w.contains(Point::new(-1e-9, 5.0)));
        assert!(!w.contains(Point::new(5.0, 10.0 + 1e-9)));
    }

    #[test]
    fn zero_extent_window_contains_center_only() {
        let c = Point::new(3.0, 3.0);
        let w = Rect::window(c, 0.0);
        assert!(w.contains(c));
        assert!(!w.contains(Point::new(3.0 + 1e-12, 3.0)));
    }

    #[test]
    fn intersects_shared_edge() {
        let a = Rect::new(0.0, 0.0, 1.0, 1.0);
        let b = Rect::new(1.0, 0.0, 2.0, 1.0); // touches at x = 1
        let c = Rect::new(1.0 + 1e-9, 0.0, 2.0, 1.0);
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&c));
    }

    #[test]
    fn intersection_clips() {
        let a = Rect::new(0.0, 0.0, 10.0, 10.0);
        let b = Rect::new(5.0, -5.0, 15.0, 5.0);
        assert_eq!(a.intersection(&b), Some(Rect::new(5.0, 0.0, 10.0, 5.0)));
        let far = Rect::new(100.0, 100.0, 101.0, 101.0);
        assert_eq!(a.intersection(&far), None);
    }

    #[test]
    fn contains_rect_and_degenerate() {
        let a = Rect::new(0.0, 0.0, 10.0, 10.0);
        assert!(a.contains_rect(&Rect::new(1.0, 1.0, 9.0, 9.0)));
        assert!(a.contains_rect(&a));
        assert!(!a.contains_rect(&Rect::new(1.0, 1.0, 10.5, 9.0)));
        let d = Rect::degenerate(Point::new(4.0, 4.0));
        assert!(a.contains_rect(&d));
        assert_eq!(d.area(), 0.0);
    }

    #[test]
    fn grown_to_covers_point() {
        let r = Rect::degenerate(Point::new(1.0, 1.0)).grown_to(Point::new(-2.0, 5.0));
        assert_eq!(r, Rect::new(-2.0, 1.0, 1.0, 5.0));
        assert!(r.contains(Point::new(-2.0, 5.0)));
    }

    #[test]
    fn axis_accessors() {
        let r = Rect::new(1.0, 2.0, 3.0, 4.0);
        assert_eq!(r.min_coord(0), 1.0);
        assert_eq!(r.min_coord(1), 2.0);
        assert_eq!(r.max_coord(0), 3.0);
        assert_eq!(r.max_coord(1), 4.0);
    }
}
