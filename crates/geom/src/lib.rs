//! 2-D geometric primitives shared by every crate in the `srj` workspace.
//!
//! The paper ("Random Sampling over Spatial Range Joins", ICDE 2025) works
//! with static, memory-resident sets of 2-D points and axis-aligned square
//! query windows `w(r) = [r.x − l, r.x + l] × [r.y − l, r.y + l]`. This
//! crate provides exactly those primitives:
//!
//! * [`Point`] — a 2-D point with `f64` coordinates,
//! * [`Rect`] — a closed axis-aligned rectangle (query windows, cells,
//!   bounding boxes),
//! * [`normalize_to_domain`] — the coordinate normalization to
//!   `[0, 10000]²` used in the paper's experimental setup (§V-A).
//!
//! Point identifiers are plain `u32` indices ([`PointId`]) into the owning
//! dataset slice; every structure in the workspace stores ids rather than
//! copies of points wherever possible.

mod domain;
mod point;
mod rect;

pub use domain::{bounding_rect, normalize_to_domain, DEFAULT_DOMAIN};
pub use point::{Point, PointId};
pub use rect::Rect;
