//! A static 2-D **range tree** \[Bentley 1979; Chazelle 1988\] with
//! orthogonal range counting and independent range sampling.
//!
//! This is the comparator the paper dismisses in footnote 4:
//!
//! > "Range-tree, which needs Õ(1) time for an orthogonal range
//! > counting, was also tested, but it ran out of memory before
//! > completing the index building."
//!
//! The structure is a balanced BST over the x-dimension where every node
//! stores the y-sorted ids of its whole subtree. Queries decompose the
//! window into `O(log m)` canonical subtrees and resolve the y range
//! with one binary search each — `O(log² m)` counting (the classic
//! variant without fractional cascading). Because each point is stored
//! at every ancestor, space is `Θ(m log m)` — the blow-up this crate
//! exists to demonstrate (see the `footnote4` experiment).
//!
//! Sampling: within a canonical node the qualifying ids are a contiguous
//! run of its y-sorted array, so a uniform draw is rank-selection over
//! the collected runs — `O(log² m)` per draw, exactly uniform.

mod tree;

pub use tree::RangeTree;
