use rand::Rng;
use srj_geom::{Point, PointId, Rect};

const NONE: u32 = u32::MAX;

#[derive(Clone, Debug)]
struct Node {
    /// Range into the x-sorted leaf order covered by this subtree.
    lo: u32,
    hi: u32,
    /// This subtree's ids sorted by y, as a segment of the arena.
    y_seg: (u32, u32),
    left: u32,
    right: u32,
}

impl Node {
    #[inline]
    fn is_leaf(&self) -> bool {
        self.left == NONE
    }
}

/// Static 2-D range tree (see the crate docs).
///
/// ```
/// use srj_geom::{Point, Rect};
/// use srj_rangetree::RangeTree;
///
/// let pts: Vec<Point> = (0..50).map(|i| Point::new(i as f64, (i % 5) as f64)).collect();
/// let tree = RangeTree::build(&pts);
/// let w = Rect::new(10.0, 1.0, 20.0, 3.0);
/// assert_eq!(tree.range_count(&w), pts.iter().filter(|p| w.contains(**p)).count());
/// ```
#[derive(Clone, Debug)]
pub struct RangeTree {
    pts: Vec<Point>,
    /// Point ids sorted by x — the leaf order.
    x_order: Vec<PointId>,
    nodes: Vec<Node>,
    /// Concatenation of every node's y-sorted id array: `Θ(m log m)`
    /// entries — the footnote-4 memory blow-up.
    arena: Vec<PointId>,
    root: u32,
}

impl RangeTree {
    /// Builds the tree in `O(m log m)` time and — unlike every other
    /// structure in this workspace — `Θ(m log m)` space.
    pub fn build(points: &[Point]) -> Self {
        assert!(points.len() <= (u32::MAX - 1) as usize, "too many points");
        assert!(
            points.iter().all(|p| p.x.is_finite() && p.y.is_finite()),
            "points must have finite coordinates"
        );
        let mut x_order: Vec<PointId> = (0..points.len() as u32).collect();
        x_order.sort_unstable_by(|&a, &b| points[a as usize].x.total_cmp(&points[b as usize].x));
        let mut t = RangeTree {
            pts: points.to_vec(),
            x_order,
            nodes: Vec::with_capacity(2 * points.len()),
            arena: Vec::new(),
            root: NONE,
        };
        if !t.pts.is_empty() {
            t.root = t.build_rec(0, t.pts.len() as u32);
        }
        // The structure is static: drop the growth slack so the
        // footprint reflects the data (Θ(m log m) arena).
        t.nodes.shrink_to_fit();
        t.arena.shrink_to_fit();
        t
    }

    /// Builds the subtree over `x_order[lo..hi)` and returns its node
    /// index. Children are built first so the parent's y array is the
    /// linear merge of theirs (bottom-up mergesort ⇒ `O(m log m)` total).
    fn build_rec(&mut self, lo: u32, hi: u32) -> u32 {
        if hi - lo == 1 {
            let start = self.arena.len() as u32;
            self.arena.push(self.x_order[lo as usize]);
            let me = self.nodes.len() as u32;
            self.nodes.push(Node {
                lo,
                hi,
                y_seg: (start, start + 1),
                left: NONE,
                right: NONE,
            });
            return me;
        }
        let mid = lo + (hi - lo) / 2;
        let left = self.build_rec(lo, mid);
        let right = self.build_rec(mid, hi);
        let (ls, le) = self.nodes[left as usize].y_seg;
        let (rs, re) = self.nodes[right as usize].y_seg;
        let start = self.arena.len() as u32;
        // merge the children's y-sorted segments
        let (mut i, mut j) = (ls, rs);
        while i < le && j < re {
            let a = self.arena[i as usize];
            let b = self.arena[j as usize];
            if self.pts[a as usize].y <= self.pts[b as usize].y {
                self.arena.push(a);
                i += 1;
            } else {
                self.arena.push(b);
                j += 1;
            }
        }
        for k in i..le {
            let v = self.arena[k as usize];
            self.arena.push(v);
        }
        for k in j..re {
            let v = self.arena[k as usize];
            self.arena.push(v);
        }
        let me = self.nodes.len() as u32;
        self.nodes.push(Node {
            lo,
            hi,
            y_seg: (start, self.arena.len() as u32),
            left,
            right,
        });
        me
    }

    /// Number of indexed points.
    #[inline]
    pub fn len(&self) -> usize {
        self.pts.len()
    }

    /// `true` iff no points are indexed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pts.is_empty()
    }

    #[inline]
    fn node_x_span(&self, n: &Node) -> (f64, f64) {
        (
            self.pts[self.x_order[n.lo as usize] as usize].x,
            self.pts[self.x_order[(n.hi - 1) as usize] as usize].x,
        )
    }

    /// The contiguous run of `n`'s y-sorted segment inside
    /// `[w.min_y, w.max_y]`.
    #[inline]
    fn y_run(&self, n: &Node, w: &Rect) -> (u32, u32) {
        let seg = &self.arena[n.y_seg.0 as usize..n.y_seg.1 as usize];
        let lb = seg.partition_point(|&id| self.pts[id as usize].y < w.min_y);
        let ub = seg.partition_point(|&id| self.pts[id as usize].y <= w.max_y);
        (n.y_seg.0 + lb as u32, n.y_seg.0 + ub as u32)
    }

    /// Visits the canonical decomposition of `w`: every maximal subtree
    /// whose x span lies inside `[w.min_x, w.max_x]`, passing the arena
    /// run of its y matches. `O(log² m)`.
    fn for_each_canonical(&self, w: &Rect, mut visit: impl FnMut(u32, u32)) {
        if self.root == NONE {
            return;
        }
        let mut stack = vec![self.root];
        while let Some(ni) = stack.pop() {
            let n = &self.nodes[ni as usize];
            let (xmin, xmax) = self.node_x_span(n);
            if xmin > w.max_x || xmax < w.min_x {
                continue;
            }
            if w.min_x <= xmin && xmax <= w.max_x {
                let (lo, hi) = self.y_run(n, w);
                if lo < hi {
                    visit(lo, hi);
                }
                continue;
            }
            if n.is_leaf() {
                let p = self.pts[self.x_order[n.lo as usize] as usize];
                if w.contains(p) {
                    visit(n.y_seg.0, n.y_seg.1);
                }
                continue;
            }
            stack.push(n.left);
            stack.push(n.right);
        }
    }

    /// Exact `|S ∩ w|` in `O(log² m)`.
    pub fn range_count(&self, w: &Rect) -> usize {
        let mut total = 0usize;
        self.for_each_canonical(w, |lo, hi| total += (hi - lo) as usize);
        total
    }

    /// One uniform, independent draw from `S ∩ w` with the exact count,
    /// or `None` if the window is empty. `O(log² m)`.
    pub fn sample_in_range<R: Rng + ?Sized>(
        &self,
        w: &Rect,
        rng: &mut R,
    ) -> Option<(PointId, usize)> {
        let count = self.range_count(w);
        if count == 0 {
            return None;
        }
        let mut rank = rng.gen_range(0..count);
        let mut picked = None;
        self.for_each_canonical(w, |lo, hi| {
            if picked.is_some() {
                return;
            }
            let len = (hi - lo) as usize;
            if rank < len {
                picked = Some(self.arena[(lo + rank as u32) as usize]);
            } else {
                rank -= len;
            }
        });
        Some((picked.expect("rank within total count"), count))
    }

    /// Approximate heap footprint in bytes — `Θ(m log m)`, the number
    /// this crate exists to report.
    pub fn memory_bytes(&self) -> usize {
        self.pts.capacity() * std::mem::size_of::<Point>()
            + self.x_order.capacity() * std::mem::size_of::<PointId>()
            + self.nodes.capacity() * std::mem::size_of::<Node>()
            + self.arena.capacity() * std::mem::size_of::<PointId>()
    }

    /// Arena entries (≈ `m ⌈log₂ m⌉`): the log-factor overhead measured
    /// by the footnote-4 experiment.
    pub fn arena_entries(&self) -> usize {
        self.arena.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn pseudo_points(n: usize, seed: u64, extent: f64) -> Vec<Point> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| Point::new(next() * extent, next() * extent))
            .collect()
    }

    #[test]
    fn empty_and_single() {
        let t = RangeTree::build(&[]);
        assert!(t.is_empty());
        assert_eq!(t.range_count(&Rect::new(0.0, 0.0, 1.0, 1.0)), 0);
        let t = RangeTree::build(&[Point::new(2.0, 3.0)]);
        assert_eq!(t.range_count(&Rect::new(0.0, 0.0, 5.0, 5.0)), 1);
        assert_eq!(t.range_count(&Rect::new(0.0, 0.0, 1.0, 1.0)), 0);
    }

    #[test]
    fn count_matches_brute_force() {
        let pts = pseudo_points(500, 7, 100.0);
        let t = RangeTree::build(&pts);
        for (i, probe) in pseudo_points(40, 8, 100.0).into_iter().enumerate() {
            let w = Rect::window(probe, 3.0 + (i as f64) * 2.0);
            let brute = pts.iter().filter(|p| w.contains(**p)).count();
            assert_eq!(t.range_count(&w), brute, "window {w:?}");
        }
    }

    #[test]
    fn duplicates_and_collinear() {
        let mut pts = vec![Point::new(5.0, 5.0); 50];
        pts.extend((0..50).map(|i| Point::new(i as f64, 5.0)));
        let t = RangeTree::build(&pts);
        assert_eq!(t.range_count(&Rect::new(5.0, 5.0, 5.0, 5.0)), 51);
        assert_eq!(t.range_count(&Rect::new(0.0, 0.0, 100.0, 100.0)), 100);
    }

    #[test]
    fn sample_is_uniform() {
        let pts = pseudo_points(120, 9, 30.0);
        let t = RangeTree::build(&pts);
        let w = Rect::new(5.0, 5.0, 25.0, 25.0);
        let qualifying: Vec<u32> = (0..pts.len() as u32)
            .filter(|&i| w.contains(pts[i as usize]))
            .collect();
        assert!(qualifying.len() > 10);
        let mut rng = SmallRng::seed_from_u64(10);
        let draws = 4_000 * qualifying.len();
        let mut freq = std::collections::HashMap::new();
        for _ in 0..draws {
            let (id, count) = t.sample_in_range(&w, &mut rng).unwrap();
            assert_eq!(count, qualifying.len());
            assert!(w.contains(pts[id as usize]));
            *freq.entry(id).or_insert(0usize) += 1;
        }
        assert_eq!(freq.len(), qualifying.len());
        let expected = draws as f64 / qualifying.len() as f64;
        for (&id, &c) in &freq {
            let rel = (c as f64 - expected).abs() / expected;
            assert!(rel < 0.1, "id {id}: {c} vs {expected}");
        }
    }

    #[test]
    fn arena_is_m_log_m() {
        let pts = pseudo_points(1024, 11, 50.0);
        let t = RangeTree::build(&pts);
        // complete binary tree over 1024 leaves: each point appears at
        // exactly log2(1024) + 1 = 11 levels
        assert_eq!(t.arena_entries(), 1024 * 11);
    }

    #[test]
    fn memory_grows_superlinearly_vs_points() {
        let small = RangeTree::build(&pseudo_points(1_000, 1, 50.0));
        let large = RangeTree::build(&pseudo_points(16_000, 1, 50.0));
        // arena entries per point grow with log m — the defining
        // super-linear term
        let apq_small = small.arena_entries() as f64 / 1_000.0;
        let apq_large = large.arena_entries() as f64 / 16_000.0;
        assert!(
            apq_large > apq_small * 1.25,
            "arena per point: {apq_small} -> {apq_large}"
        );
        // and the total footprint per point strictly increases too
        let per_point_small = small.memory_bytes() as f64 / 1_000.0;
        let per_point_large = large.memory_bytes() as f64 / 16_000.0;
        assert!(
            per_point_large > per_point_small * 1.05,
            "{per_point_small} -> {per_point_large}"
        );
    }
}
