use srj_geom::{Point, PointId, Rect};

/// Default node fanout (entries per node). 16 balances probe depth
/// against per-node scan cost for point data.
pub const DEFAULT_FANOUT: usize = 16;

#[derive(Clone, Debug)]
struct Node {
    /// Minimum bounding rectangle of everything below.
    bbox: Rect,
    /// Number of points below (enables O(1) containment counting).
    count: u32,
    /// Children: `leaf == true` ⇒ range into the entry arrays,
    /// otherwise range into the node array.
    lo: u32,
    hi: u32,
    leaf: bool,
}

/// STR bulk-loaded R-tree over points (see the crate docs).
///
/// ```
/// use srj_geom::{Point, Rect};
/// use srj_rtree::RTree;
///
/// let pts: Vec<Point> = (0..100).map(|i| Point::new(i as f64, (i % 7) as f64)).collect();
/// let tree = RTree::build(&pts);
/// let w = Rect::new(20.0, 1.0, 40.0, 5.0);
/// assert_eq!(tree.range_count(&w), pts.iter().filter(|p| w.contains(**p)).count());
/// ```
#[derive(Clone, Debug)]
pub struct RTree {
    /// Leaf entries, reordered by the STR packing.
    pts: Vec<Point>,
    ids: Vec<PointId>,
    nodes: Vec<Node>,
    root: u32,
    fanout: usize,
}

impl RTree {
    /// Builds with [`DEFAULT_FANOUT`].
    pub fn build(points: &[Point]) -> Self {
        Self::with_fanout(points, DEFAULT_FANOUT)
    }

    /// Builds with an explicit fanout (must be ≥ 2).
    pub fn with_fanout(points: &[Point], fanout: usize) -> Self {
        assert!(fanout >= 2, "fanout must be at least 2");
        assert!(points.len() <= u32::MAX as usize, "too many points");
        assert!(
            points.iter().all(|p| p.x.is_finite() && p.y.is_finite()),
            "points must have finite coordinates"
        );
        let mut entries: Vec<(Point, PointId)> = points
            .iter()
            .enumerate()
            .map(|(i, &p)| (p, i as PointId))
            .collect();

        let mut t = RTree {
            pts: Vec::with_capacity(points.len()),
            ids: Vec::with_capacity(points.len()),
            nodes: Vec::new(),
            root: 0,
            fanout,
        };
        if entries.is_empty() {
            return t;
        }

        // Level 0: STR-pack the points into leaves.
        str_sort(&mut entries, fanout, |e| e.0);
        let mut level: Vec<u32> = Vec::new();
        for chunk in entries.chunks(fanout) {
            let lo = t.pts.len() as u32;
            let mut bbox = Rect::degenerate(chunk[0].0);
            for (p, id) in chunk {
                t.pts.push(*p);
                t.ids.push(*id);
                bbox = bbox.grown_to(*p);
            }
            level.push(t.nodes.len() as u32);
            t.nodes.push(Node {
                bbox,
                count: chunk.len() as u32,
                lo,
                hi: t.pts.len() as u32,
                leaf: true,
            });
        }

        // Upper levels: STR-pack node centres until a single root.
        while level.len() > 1 {
            let mut items: Vec<(Point, u32)> = level
                .iter()
                .map(|&ni| (t.nodes[ni as usize].bbox.center(), ni))
                .collect();
            str_sort(&mut items, fanout, |e| e.0);
            let mut next: Vec<u32> = Vec::new();
            // Children of one parent must be contiguous in the node
            // array; re-emit them in packed order.
            let mut packed_children: Vec<u32> = Vec::with_capacity(items.len());
            let mut parents: Vec<(u32, u32)> = Vec::new();
            for chunk in items.chunks(fanout) {
                let start = packed_children.len() as u32;
                packed_children.extend(chunk.iter().map(|&(_, ni)| ni));
                parents.push((start, packed_children.len() as u32));
            }
            // Move the packed children to the front of a fresh segment.
            let seg_base = t.nodes.len() as u32;
            let mut remap: Vec<u32> = Vec::with_capacity(packed_children.len());
            for &ni in &packed_children {
                remap.push(t.nodes.len() as u32);
                let copy = t.nodes[ni as usize].clone();
                t.nodes.push(copy);
            }
            let _ = remap;
            for (start, end) in parents {
                let children = seg_base + start..seg_base + end;
                let first = &t.nodes[children.start as usize];
                let mut bbox = first.bbox;
                let mut count = 0u32;
                for ci in children.clone() {
                    let c = &t.nodes[ci as usize];
                    bbox = Rect::new(
                        bbox.min_x.min(c.bbox.min_x),
                        bbox.min_y.min(c.bbox.min_y),
                        bbox.max_x.max(c.bbox.max_x),
                        bbox.max_y.max(c.bbox.max_y),
                    );
                    count += c.count;
                }
                next.push(t.nodes.len() as u32);
                t.nodes.push(Node {
                    bbox,
                    count,
                    lo: children.start,
                    hi: children.end,
                    leaf: false,
                });
            }
            level = next;
        }
        t.root = level[0];
        t
    }

    /// Number of indexed points.
    #[inline]
    pub fn len(&self) -> usize {
        self.pts.len()
    }

    /// `true` iff the tree indexes no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pts.is_empty()
    }

    /// Exact count of indexed points inside the closed rectangle.
    pub fn range_count(&self, w: &Rect) -> usize {
        if self.is_empty() {
            return 0;
        }
        self.count_rec(self.root, w)
    }

    fn count_rec(&self, ni: u32, w: &Rect) -> usize {
        let n = &self.nodes[ni as usize];
        if !w.intersects(&n.bbox) {
            return 0;
        }
        if w.contains_rect(&n.bbox) {
            return n.count as usize;
        }
        if n.leaf {
            return self.pts[n.lo as usize..n.hi as usize]
                .iter()
                .filter(|p| w.contains(**p))
                .count();
        }
        (n.lo..n.hi).map(|ci| self.count_rec(ci, w)).sum()
    }

    /// Appends ids of all indexed points inside `w` to `out`.
    pub fn range_report(&self, w: &Rect, out: &mut Vec<PointId>) {
        if self.is_empty() {
            return;
        }
        self.report_rec(self.root, w, out);
    }

    fn report_rec(&self, ni: u32, w: &Rect, out: &mut Vec<PointId>) {
        let n = &self.nodes[ni as usize];
        if !w.intersects(&n.bbox) {
            return;
        }
        if w.contains_rect(&n.bbox) && n.leaf {
            out.extend_from_slice(&self.ids[n.lo as usize..n.hi as usize]);
            return;
        }
        if n.leaf {
            for i in n.lo..n.hi {
                if w.contains(self.pts[i as usize]) {
                    out.push(self.ids[i as usize]);
                }
            }
            return;
        }
        for ci in n.lo..n.hi {
            self.report_rec(ci, w, out);
        }
    }

    /// Fanout the tree was built with.
    #[inline]
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// Approximate heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.pts.capacity() * std::mem::size_of::<Point>()
            + self.ids.capacity() * std::mem::size_of::<PointId>()
            + self.nodes.capacity() * std::mem::size_of::<Node>()
    }
}

/// Sort-Tile-Recursive ordering: sort by x, then re-sort each vertical
/// slab of `slab × fanout` items by y. After this, consecutive `fanout`
/// chunks form the STR tiles.
fn str_sort<T>(items: &mut [T], fanout: usize, center: impl Fn(&T) -> Point + Copy) {
    let n = items.len();
    let leaves = n.div_ceil(fanout);
    let slabs = (leaves as f64).sqrt().ceil() as usize;
    let slab_len = slabs.max(1) * fanout;
    items.sort_by(|a, b| center(a).x.total_cmp(&center(b).x));
    for slab in items.chunks_mut(slab_len) {
        slab.sort_by(|a, b| center(a).y.total_cmp(&center(b).y));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_points(n: usize, seed: u64, extent: f64) -> Vec<Point> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| Point::new(next() * extent, next() * extent))
            .collect()
    }

    #[test]
    fn empty_and_single() {
        let t = RTree::build(&[]);
        assert!(t.is_empty());
        assert_eq!(t.range_count(&Rect::new(0.0, 0.0, 1.0, 1.0)), 0);
        let t = RTree::build(&[Point::new(3.0, 4.0)]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.range_count(&Rect::new(0.0, 0.0, 5.0, 5.0)), 1);
    }

    #[test]
    fn count_matches_brute_force() {
        for n in [10usize, 100, 1_000, 5_000] {
            let pts = pseudo_points(n, n as u64, 100.0);
            let t = RTree::build(&pts);
            for (i, probe) in pseudo_points(25, 99, 100.0).into_iter().enumerate() {
                let w = Rect::window(probe, 2.0 + i as f64 * 3.0);
                let brute = pts.iter().filter(|p| w.contains(**p)).count();
                assert_eq!(t.range_count(&w), brute, "n={n} window {w:?}");
            }
        }
    }

    #[test]
    fn report_matches_count() {
        let pts = pseudo_points(2_000, 5, 50.0);
        let t = RTree::build(&pts);
        let w = Rect::new(10.0, 10.0, 35.0, 30.0);
        let mut out = Vec::new();
        t.range_report(&w, &mut out);
        assert_eq!(out.len(), t.range_count(&w));
        out.sort_unstable();
        out.dedup();
        assert_eq!(out.len(), t.range_count(&w), "duplicates reported");
        for id in out {
            assert!(w.contains(pts[id as usize]));
        }
    }

    #[test]
    fn small_fanout_and_duplicates() {
        let mut pts = vec![Point::new(1.0, 1.0); 40];
        pts.extend(pseudo_points(60, 3, 10.0));
        let t = RTree::with_fanout(&pts, 2);
        assert_eq!(t.range_count(&Rect::degenerate(Point::new(1.0, 1.0))), 40);
        let all = Rect::new(-1.0, -1.0, 11.0, 11.0);
        assert_eq!(t.range_count(&all), 100);
    }

    #[test]
    fn node_utilisation_is_high() {
        // STR packing: every leaf except possibly the last is full
        let pts = pseudo_points(1_600, 7, 100.0);
        let t = RTree::with_fanout(&pts, 16);
        let leaves: Vec<&Node> = t.nodes.iter().filter(|n| n.leaf).collect();
        let full = leaves
            .iter()
            .filter(|n| (n.hi - n.lo) as usize == 16)
            .count();
        assert!(
            full >= leaves.len() - 1,
            "{full} of {} leaves full",
            leaves.len()
        );
    }

    #[test]
    #[should_panic(expected = "fanout must be at least 2")]
    fn fanout_one_rejected() {
        RTree::with_fanout(&[], 1);
    }

    #[test]
    #[should_panic(expected = "finite coordinates")]
    fn nan_rejected() {
        RTree::build(&[Point::new(f64::NAN, 0.0)]);
    }
}
