//! An **STR bulk-loaded R-tree** \[Leutenegger et al. 1997\] over 2-D
//! points, with orthogonal range counting and reporting.
//!
//! The paper's related-work section (§VI) names the index nested-loop
//! join — classically an R-tree probe per outer point \[Jacox & Samet
//! 2007; Šidlauskas & Jensen 2014\] — as one of the two state-of-the-art
//! in-memory spatial join approaches. This crate provides that substrate
//! so `srj-join::rtree_join` can stand in as the "run the join, then
//! sample" comparator's index, and so the join-algorithm agreement tests
//! have a third independent implementation to cross-check.
//!
//! Sort-Tile-Recursive packing: sort by x, cut into `⌈√(n/B)⌉` vertical
//! slabs, sort each slab by y, cut into full leaves; repeat on the node
//! MBR centres until one root remains. Produces near-100% node
//! utilisation and near-square MBRs — the best static packing for point
//! data.

mod tree;

pub use tree::{RTree, DEFAULT_FANOUT};
