use srj_geom::{Point, PointId, Rect};

/// Sentinel child index for leaves.
pub(crate) const NONE: u32 = u32::MAX;

/// Default number of points per leaf.
///
/// Small enough that boundary leaves stay cheap to scan, large enough to
/// keep the node array compact. Benchmarked as a reasonable middle ground;
/// override with [`KdTree::with_leaf_size`].
pub const DEFAULT_LEAF_SIZE: usize = 16;

#[derive(Clone, Debug)]
pub(crate) struct Node {
    /// Tight bounding box of the points in this subtree.
    pub(crate) bbox: Rect,
    /// Start of this subtree's contiguous slice in the point array.
    pub(crate) lo: u32,
    /// One past the end of the slice.
    pub(crate) hi: u32,
    /// Left child node index, or [`NONE`] for a leaf.
    pub(crate) left: u32,
    /// Right child node index, or [`NONE`] for a leaf.
    pub(crate) right: u32,
}

impl Node {
    #[inline]
    pub(crate) fn is_leaf(&self) -> bool {
        self.left == NONE
    }

    #[inline]
    pub(crate) fn len(&self) -> u32 {
        self.hi - self.lo
    }
}

/// Static 2-D kd-tree over a point set.
///
/// Built once from a slice of points; supports:
/// * [`KdTree::range_count`] — exact `|S ∩ w|`,
/// * [`KdTree::range_report`] — all ids in `w`,
/// * [`KdTree::sample_in_range`] — one uniform, independent draw from
///   `S ∩ w` (the KDS primitive), see the `sample` module.
///
/// Space is `O(m)`: the reordered point array, the id permutation, and
/// `O(m / leaf_size)` nodes.
///
/// ```
/// use srj_geom::{Point, Rect};
/// use srj_kdtree::{CanonicalScratch, KdTree};
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let pts: Vec<Point> = (0..100).map(|i| Point::new(i as f64, (i % 10) as f64)).collect();
/// let tree = KdTree::build(&pts);
/// let w = Rect::new(10.0, 2.0, 30.0, 7.0);
/// assert_eq!(tree.range_count(&w), pts.iter().filter(|p| w.contains(**p)).count());
///
/// let mut rng = SmallRng::seed_from_u64(7);
/// let mut scratch = CanonicalScratch::new();
/// let (id, count) = tree.sample_in_range(&w, &mut rng, &mut scratch).unwrap();
/// assert!(w.contains(pts[id as usize]));
/// assert_eq!(count, tree.range_count(&w));
/// ```
#[derive(Clone, Debug)]
pub struct KdTree {
    pub(crate) pts: Vec<Point>,
    pub(crate) ids: Vec<PointId>,
    pub(crate) nodes: Vec<Node>,
    leaf_size: usize,
}

impl KdTree {
    /// Builds a kd-tree with the default leaf size.
    ///
    /// Ids are the indices of `points`; an empty input yields an empty
    /// tree (all queries return zero results).
    pub fn build(points: &[Point]) -> Self {
        Self::with_leaf_size(points, DEFAULT_LEAF_SIZE)
    }

    /// Builds a kd-tree with an explicit leaf size (must be ≥ 1).
    pub fn with_leaf_size(points: &[Point], leaf_size: usize) -> Self {
        assert!(leaf_size >= 1, "leaf_size must be at least 1");
        assert!(
            points.len() <= NONE as usize,
            "kd-tree supports at most u32::MAX - 1 points"
        );
        assert!(
            points.iter().all(|p| p.x.is_finite() && p.y.is_finite()),
            "points must have finite coordinates"
        );
        let mut entries: Vec<(Point, PointId)> = points
            .iter()
            .enumerate()
            .map(|(i, &p)| (p, i as PointId))
            .collect();
        let mut nodes = Vec::with_capacity(if points.is_empty() {
            0
        } else {
            2 * points.len().div_ceil(leaf_size)
        });
        if !entries.is_empty() {
            build_rec(&mut entries, 0, 0, leaf_size, &mut nodes);
        }
        let mut pts = Vec::with_capacity(entries.len());
        let mut ids = Vec::with_capacity(entries.len());
        for (p, id) in entries {
            pts.push(p);
            ids.push(id);
        }
        KdTree {
            pts,
            ids,
            nodes,
            leaf_size,
        }
    }

    /// Number of indexed points.
    #[inline]
    pub fn len(&self) -> usize {
        self.pts.len()
    }

    /// `true` iff the tree indexes no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pts.is_empty()
    }

    /// Leaf size the tree was built with.
    #[inline]
    pub fn leaf_size(&self) -> usize {
        self.leaf_size
    }

    /// Exact number of indexed points inside the closed rectangle `w`.
    ///
    /// `O(√m + k)` on a balanced tree.
    pub fn range_count(&self, w: &Rect) -> usize {
        if self.nodes.is_empty() {
            return 0;
        }
        self.count_rec(0, w)
    }

    fn count_rec(&self, node: u32, w: &Rect) -> usize {
        let n = &self.nodes[node as usize];
        if !w.intersects(&n.bbox) {
            return 0;
        }
        if w.contains_rect(&n.bbox) {
            return n.len() as usize;
        }
        if n.is_leaf() {
            return self.pts[n.lo as usize..n.hi as usize]
                .iter()
                .filter(|p| w.contains(**p))
                .count();
        }
        self.count_rec(n.left, w) + self.count_rec(n.right, w)
    }

    /// Appends the ids of all indexed points inside `w` to `out`.
    pub fn range_report(&self, w: &Rect, out: &mut Vec<PointId>) {
        if self.nodes.is_empty() {
            return;
        }
        self.report_rec(0, w, out);
    }

    fn report_rec(&self, node: u32, w: &Rect, out: &mut Vec<PointId>) {
        let n = &self.nodes[node as usize];
        if !w.intersects(&n.bbox) {
            return;
        }
        if w.contains_rect(&n.bbox) {
            out.extend_from_slice(&self.ids[n.lo as usize..n.hi as usize]);
            return;
        }
        if n.is_leaf() {
            for i in n.lo..n.hi {
                if w.contains(self.pts[i as usize]) {
                    out.push(self.ids[i as usize]);
                }
            }
            return;
        }
        self.report_rec(n.left, w, out);
        self.report_rec(n.right, w, out);
    }

    /// Original id and coordinates of the point at internal index `i`.
    #[inline]
    pub(crate) fn entry(&self, i: u32) -> (PointId, Point) {
        (self.ids[i as usize], self.pts[i as usize])
    }

    /// Approximate heap footprint in bytes (for the Fig. 4 experiment).
    pub fn memory_bytes(&self) -> usize {
        self.pts.capacity() * std::mem::size_of::<Point>()
            + self.ids.capacity() * std::mem::size_of::<PointId>()
            + self.nodes.capacity() * std::mem::size_of::<Node>()
    }
}

/// Recursive median-split construction over `entries[lo..]`.
///
/// Returns the index of the created node. `depth` selects the split axis
/// (x at even depths, y at odd depths — the classic alternating scheme
/// that yields the `O(√m)` range-query bound).
fn build_rec(
    entries: &mut [(Point, PointId)],
    base: u32,
    depth: usize,
    leaf_size: usize,
    nodes: &mut Vec<Node>,
) -> u32 {
    let bbox = bounding_rect_of(entries);
    let me = nodes.len() as u32;
    nodes.push(Node {
        bbox,
        lo: base,
        hi: base + entries.len() as u32,
        left: NONE,
        right: NONE,
    });
    if entries.len() > leaf_size {
        let axis = depth & 1;
        let mid = entries.len() / 2;
        entries.select_nth_unstable_by(mid, |a, b| a.0.coord(axis).total_cmp(&b.0.coord(axis)));
        let (l, r) = entries.split_at_mut(mid);
        let left = build_rec(l, base, depth + 1, leaf_size, nodes);
        let right = build_rec(r, base + mid as u32, depth + 1, leaf_size, nodes);
        nodes[me as usize].left = left;
        nodes[me as usize].right = right;
    }
    me
}

fn bounding_rect_of(entries: &[(Point, PointId)]) -> Rect {
    // `entries` is non-empty by construction.
    let mut r = Rect::degenerate(entries[0].0);
    for (p, _) in &entries[1..] {
        r = r.grown_to(*p);
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_points(nx: usize, ny: usize) -> Vec<Point> {
        let mut v = Vec::with_capacity(nx * ny);
        for i in 0..nx {
            for j in 0..ny {
                v.push(Point::new(i as f64, j as f64));
            }
        }
        v
    }

    fn brute_count(pts: &[Point], w: &Rect) -> usize {
        pts.iter().filter(|p| w.contains(**p)).count()
    }

    #[test]
    fn empty_tree_queries() {
        let t = KdTree::build(&[]);
        assert!(t.is_empty());
        assert_eq!(t.range_count(&Rect::new(0.0, 0.0, 1.0, 1.0)), 0);
        let mut out = vec![];
        t.range_report(&Rect::new(0.0, 0.0, 1.0, 1.0), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn single_point() {
        let t = KdTree::build(&[Point::new(2.0, 3.0)]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.range_count(&Rect::new(0.0, 0.0, 5.0, 5.0)), 1);
        assert_eq!(t.range_count(&Rect::new(0.0, 0.0, 1.0, 1.0)), 0);
        assert_eq!(t.range_count(&Rect::degenerate(Point::new(2.0, 3.0))), 1);
    }

    #[test]
    fn count_matches_brute_force_on_grid() {
        let pts = grid_points(20, 20);
        let t = KdTree::build(&pts);
        let windows = [
            Rect::new(0.0, 0.0, 19.0, 19.0),
            Rect::new(2.5, 2.5, 7.5, 11.5),
            Rect::new(5.0, 5.0, 5.0, 5.0),
            Rect::new(-3.0, -3.0, -1.0, -1.0),
            Rect::new(18.0, 18.0, 40.0, 40.0),
        ];
        for w in &windows {
            assert_eq!(t.range_count(w), brute_count(&pts, w), "window {w:?}");
        }
    }

    #[test]
    fn report_matches_count_and_is_correct() {
        let pts = grid_points(15, 15);
        let t = KdTree::build(&pts);
        let w = Rect::new(3.5, 0.0, 9.0, 6.5);
        let mut out = vec![];
        t.range_report(&w, &mut out);
        assert_eq!(out.len(), t.range_count(&w));
        out.sort_unstable();
        out.dedup();
        assert_eq!(out.len(), t.range_count(&w), "duplicate ids reported");
        for id in &out {
            assert!(w.contains(pts[*id as usize]));
        }
        // everything not reported must be outside
        let reported: std::collections::HashSet<u32> = out.into_iter().collect();
        for (i, p) in pts.iter().enumerate() {
            assert_eq!(w.contains(*p), reported.contains(&(i as u32)));
        }
    }

    #[test]
    fn all_duplicate_points() {
        let pts = vec![Point::new(1.0, 1.0); 100];
        let t = KdTree::with_leaf_size(&pts, 4);
        assert_eq!(t.range_count(&Rect::new(0.0, 0.0, 2.0, 2.0)), 100);
        assert_eq!(t.range_count(&Rect::degenerate(Point::new(1.0, 1.0))), 100);
        assert_eq!(t.range_count(&Rect::new(1.5, 1.5, 2.0, 2.0)), 0);
    }

    #[test]
    fn collinear_points() {
        let pts: Vec<Point> = (0..64).map(|i| Point::new(i as f64, 0.0)).collect();
        let t = KdTree::with_leaf_size(&pts, 2);
        assert_eq!(t.range_count(&Rect::new(10.0, -1.0, 20.0, 1.0)), 11);
        assert_eq!(t.range_count(&Rect::new(10.5, -1.0, 19.5, 1.0)), 9);
    }

    #[test]
    fn leaf_size_one_works() {
        let pts = grid_points(8, 8);
        let t = KdTree::with_leaf_size(&pts, 1);
        let w = Rect::new(1.0, 1.0, 4.0, 4.0);
        assert_eq!(t.range_count(&w), brute_count(&pts, &w));
    }

    #[test]
    #[should_panic(expected = "leaf_size must be at least 1")]
    fn zero_leaf_size_panics() {
        KdTree::with_leaf_size(&[], 0);
    }

    #[test]
    fn memory_accounting_scales() {
        let small = KdTree::build(&grid_points(5, 5));
        let large = KdTree::build(&grid_points(50, 50));
        assert!(large.memory_bytes() > small.memory_bytes());
    }
}
