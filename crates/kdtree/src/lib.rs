//! A static, array-backed 2-D kd-tree \[Bentley 1975\] with orthogonal
//! range counting, range reporting, and **independent range sampling**.
//!
//! This is the substrate of both baseline algorithms in the paper
//! (Section III): `KDS` \[Xie, Phillips, Matheny, Li. "Spatial independent
//! range sampling", SIGMOD 2021\] answers "return one point drawn
//! uniformly at random from `S ∩ w`" in `O(√m)` time on a balanced
//! kd-tree, by decomposing the window into canonical subtrees (fully
//! covered nodes) plus boundary points and then drawing a uniform rank.
//!
//! Layout: points are reordered during construction so every subtree owns
//! a contiguous slice of the point array. A canonical subtree therefore
//! supports *O(1)* uniform sampling (uniform index into its slice), which
//! is exactly what makes the KDS draw `O(√m)` instead of `O(√m log m)`.
//!
//! The tree is built with alternating split axes and median splits, giving
//! the textbook `O(√m + k)` range-query bound \[de Berg et al.,
//! Computational Geometry, 2000\].

mod sample;
mod tree;

pub use sample::CanonicalScratch;
pub use tree::KdTree;
