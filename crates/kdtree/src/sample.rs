use rand::Rng;
use srj_geom::{PointId, Rect};

use crate::tree::NONE;
use crate::KdTree;

/// Reusable scratch buffer for canonical-range decomposition.
///
/// `KDS` re-decomposes the window for every draw (`O(√m)` per sample, as
/// in Section III-A of the paper). The decomposition needs a temporary
/// list of `O(√m)` contiguous index ranges; reusing this buffer across
/// draws keeps the hot loop allocation-free (see the Rust Performance
/// Book's "workhorse collection" pattern).
#[derive(Default, Clone, Debug)]
pub struct CanonicalScratch {
    /// Contiguous internal-index ranges that are fully inside the window.
    ranges: Vec<(u32, u32)>,
}

impl CanonicalScratch {
    /// Creates an empty scratch buffer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl KdTree {
    /// Draws one point **uniformly at random** from the indexed points
    /// inside the closed window `w`, independently of any previous draw.
    ///
    /// Returns `(id, count)` where `count = |S ∩ w|`, or `None` when the
    /// window is empty. The count comes for free from the canonical
    /// decomposition and is exactly what `KDS-rejection` needs for its
    /// acceptance probability `|S(w(r))| / µ(r)` (paper Section III-B).
    ///
    /// This is the KDS primitive \[Xie et al., SIGMOD 2021\]:
    /// 1. decompose `w` into canonical subtrees (fully covered nodes) and
    ///    individually-checked boundary points — `O(√m)` ranges;
    /// 2. draw a uniform rank in `[0, count)`;
    /// 3. map the rank to a range, then to a point. Because every subtree
    ///    owns a contiguous slice, step 3 is a uniform index choice.
    ///
    /// Every point in `S ∩ w` is returned with probability exactly
    /// `1 / count`.
    pub fn sample_in_range<R: Rng + ?Sized>(
        &self,
        w: &Rect,
        rng: &mut R,
        scratch: &mut CanonicalScratch,
    ) -> Option<(PointId, usize)> {
        let count = self.decompose(w, scratch);
        if count == 0 {
            return None;
        }
        let mut rank = rng.gen_range(0..count);
        for &(lo, hi) in &scratch.ranges {
            let len = (hi - lo) as usize;
            if rank < len {
                let (id, _) = self.entry(lo + rank as u32);
                return Some((id, count));
            }
            rank -= len;
        }
        unreachable!("rank {rank} exceeded decomposition of size {count}")
    }

    /// Canonical decomposition of `w`: fills `scratch.ranges` with
    /// contiguous internal-index ranges covering exactly `S ∩ w`, and
    /// returns the total count.
    fn decompose(&self, w: &Rect, scratch: &mut CanonicalScratch) -> usize {
        scratch.ranges.clear();
        if self.is_empty() {
            return 0;
        }
        let mut total = 0usize;
        let mut stack = [0u32; 64];
        let mut top = 0usize;
        stack[top] = 0;
        top += 1;
        // Iterative traversal with a fixed-size stack: the tree depth is
        // O(log m) ≤ 64 for any dataset that fits in memory.
        let mut overflow: Vec<u32> = Vec::new();
        loop {
            let node = if top > 0 {
                top -= 1;
                stack[top]
            } else if let Some(n) = overflow.pop() {
                n
            } else {
                break;
            };
            let n = &self.nodes()[node as usize];
            if !w.intersects(&n.bbox) {
                continue;
            }
            if w.contains_rect(&n.bbox) {
                total += n.len() as usize;
                scratch.ranges.push((n.lo, n.hi));
                continue;
            }
            if n.is_leaf() {
                // Boundary leaf: push each matching point as a unit range.
                let mut run_start = NONE;
                for i in n.lo..n.hi {
                    if w.contains(self.pts_slice()[i as usize]) {
                        if run_start == NONE {
                            run_start = i;
                        }
                    } else if run_start != NONE {
                        total += (i - run_start) as usize;
                        scratch.ranges.push((run_start, i));
                        run_start = NONE;
                    }
                }
                if run_start != NONE {
                    total += (n.hi - run_start) as usize;
                    scratch.ranges.push((run_start, n.hi));
                }
                continue;
            }
            for child in [n.left, n.right] {
                if top < stack.len() {
                    stack[top] = child;
                    top += 1;
                } else {
                    overflow.push(child);
                }
            }
        }
        total
    }

    #[inline]
    fn nodes(&self) -> &[crate::tree::Node] {
        &self.nodes
    }

    #[inline]
    fn pts_slice(&self) -> &[srj_geom::Point] {
        &self.pts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use srj_geom::Point;
    use std::collections::HashMap;

    fn grid_points(nx: usize, ny: usize) -> Vec<Point> {
        let mut v = Vec::with_capacity(nx * ny);
        for i in 0..nx {
            for j in 0..ny {
                v.push(Point::new(i as f64, j as f64));
            }
        }
        v
    }

    #[test]
    fn empty_window_returns_none() {
        let t = KdTree::build(&grid_points(10, 10));
        let mut rng = SmallRng::seed_from_u64(1);
        let mut scratch = CanonicalScratch::new();
        let w = Rect::new(100.0, 100.0, 200.0, 200.0);
        assert_eq!(t.sample_in_range(&w, &mut rng, &mut scratch), None);
    }

    #[test]
    fn empty_tree_returns_none() {
        let t = KdTree::build(&[]);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut scratch = CanonicalScratch::new();
        let w = Rect::new(0.0, 0.0, 1.0, 1.0);
        assert_eq!(t.sample_in_range(&w, &mut rng, &mut scratch), None);
    }

    #[test]
    fn sample_lies_in_window_and_count_is_exact() {
        let pts = grid_points(20, 20);
        let t = KdTree::with_leaf_size(&pts, 4);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut scratch = CanonicalScratch::new();
        let w = Rect::new(2.5, 3.0, 11.0, 9.5);
        let expected = pts.iter().filter(|p| w.contains(**p)).count();
        for _ in 0..500 {
            let (id, count) = t.sample_in_range(&w, &mut rng, &mut scratch).unwrap();
            assert_eq!(count, expected);
            assert!(w.contains(pts[id as usize]));
        }
    }

    #[test]
    fn single_point_window() {
        let pts = grid_points(10, 10);
        let t = KdTree::build(&pts);
        let mut rng = SmallRng::seed_from_u64(5);
        let mut scratch = CanonicalScratch::new();
        let w = Rect::degenerate(Point::new(4.0, 7.0));
        let (id, count) = t.sample_in_range(&w, &mut rng, &mut scratch).unwrap();
        assert_eq!(count, 1);
        assert_eq!(pts[id as usize], Point::new(4.0, 7.0));
    }

    #[test]
    fn draws_are_uniform_over_window() {
        // 6x6 sub-window of a 12x12 grid => 36 qualifying points.
        let pts = grid_points(12, 12);
        let t = KdTree::with_leaf_size(&pts, 3);
        let mut rng = SmallRng::seed_from_u64(42);
        let mut scratch = CanonicalScratch::new();
        let w = Rect::new(3.0, 3.0, 8.0, 8.0);
        let draws = 180_000usize;
        let mut freq: HashMap<PointId, usize> = HashMap::new();
        for _ in 0..draws {
            let (id, count) = t.sample_in_range(&w, &mut rng, &mut scratch).unwrap();
            assert_eq!(count, 36);
            *freq.entry(id).or_default() += 1;
        }
        assert_eq!(freq.len(), 36, "every qualifying point must be reachable");
        let expected = draws as f64 / 36.0;
        for (&id, &c) in &freq {
            let rel = (c as f64 - expected).abs() / expected;
            assert!(rel < 0.06, "point {id}: expected {expected}, got {c}");
        }
    }

    #[test]
    fn whole_domain_window_is_uniform_over_everything() {
        let pts = grid_points(8, 8);
        let t = KdTree::with_leaf_size(&pts, 2);
        let mut rng = SmallRng::seed_from_u64(9);
        let mut scratch = CanonicalScratch::new();
        let w = Rect::new(-1.0, -1.0, 9.0, 9.0);
        let mut freq = vec![0usize; 64];
        for _ in 0..128_000 {
            let (id, count) = t.sample_in_range(&w, &mut rng, &mut scratch).unwrap();
            assert_eq!(count, 64);
            freq[id as usize] += 1;
        }
        let expected = 128_000.0 / 64.0;
        for (id, &c) in freq.iter().enumerate() {
            let rel = (c as f64 - expected).abs() / expected;
            assert!(rel < 0.08, "point {id}: expected {expected}, got {c}");
        }
    }
}
