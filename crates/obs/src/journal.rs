//! A bounded in-memory lifecycle event log.
//!
//! Every maintenance action in the serving stack — epoch swaps, cell
//! patches, targeted repairs, re-plans, dataset compactions, and
//! backpressure parks — emits one structured [`LifecycleEvent`] into
//! the process-global [`journal`]. Sequence numbers and timestamps
//! are assigned under the journal lock, so within the journal both
//! are strictly monotone: event order *is* causal order as observed
//! at emission.
//!
//! The journal is bounded (oldest events drop first) and these are
//! rare control-plane actions, so a `Mutex` is fine — nothing here
//! is on a sampling hot path. Listeners (e.g. `srj-serve --log-json`)
//! are invoked synchronously on the emitting thread, outside the
//! buffer lock.

use std::collections::VecDeque;
use std::sync::{Mutex, OnceLock, RwLock};

use crate::clock;
use crate::json;

/// Events the journal retains before dropping the oldest.
const CAPACITY: usize = 4096;

/// Which maintenance rung (or serving condition) fired.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// Rung 1: overlay refresh over an unchanged base.
    MinorSwap,
    /// Rung 2: major swap that rebuilt only dirty `S`-cells.
    CellPatch,
    /// Rung 3: major swap that rebuilt the whole index.
    FullRebuild,
    /// Rung 4: targeted per-cell repair.
    Repair,
    /// Rung 5: algorithm re-plan from observed rejection feedback.
    Replan,
    /// A dataset store folded its delta into a fresh base snapshot.
    Compaction,
    /// A connection's send queue filled and parked its in-flight
    /// request.
    BackpressurePark,
    /// The server declined a request with `BUSY` because the worker
    /// queue (or the connection itself) was saturated past the shed
    /// high-water mark.
    LoadShed,
    /// The maintainer closed a connection that sat idle past its
    /// deadline with no in-flight work.
    ConnReaped,
    /// An epoch swap retired the serving engine's pre-drawn sample
    /// buffers: handles pinned to the old epoch drain out and new
    /// handles start with cold buffers (a stale buffer surviving a
    /// swap would be a uniformity bug, so retirement is journalled).
    BufferInvalidate,
    /// `accept(2)` hit fd exhaustion (`EMFILE`/`ENFILE`); the server
    /// paused accepting and backed off instead of spinning. `label`
    /// carries the errno text, `duration_ns` the backoff applied.
    AcceptBackoff,
}

impl EventKind {
    /// Stable lower-snake name, used in JSON and log output.
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::MinorSwap => "minor_swap",
            EventKind::CellPatch => "cell_patch",
            EventKind::FullRebuild => "full_rebuild",
            EventKind::Repair => "repair",
            EventKind::Replan => "replan",
            EventKind::Compaction => "compaction",
            EventKind::BackpressurePark => "backpressure_park",
            EventKind::LoadShed => "load_shed",
            EventKind::ConnReaped => "conn_reaped",
            EventKind::BufferInvalidate => "buffer_invalidate",
            EventKind::AcceptBackoff => "accept_backoff",
        }
    }
}

impl std::fmt::Display for EventKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One structured lifecycle event.
#[derive(Clone, Debug, PartialEq)]
pub struct LifecycleEvent {
    /// Journal-assigned sequence number, strictly monotone.
    pub seq: u64,
    /// [`clock::now_ns`] at emission, monotone within the journal.
    pub ns: u64,
    /// What fired.
    pub kind: EventKind,
    /// The dataset's registered id, when the emitter knows it (engine
    /// internals see only the store, which carries an optional label).
    pub dataset: Option<u64>,
    /// Free-form context string (peer address, dataset display label).
    /// Untrusted: JSON rendering escapes it.
    pub label: Option<String>,
    /// Dataset/store epoch after the action.
    pub epoch: u64,
    /// Cells rebuilt or repaired (0 when not applicable).
    pub dirty_cells: u64,
    /// Wall time the action took, nanoseconds.
    pub duration_ns: u64,
    /// `Σµ` (total sampling weight) before the action, when known.
    pub mu_before: f64,
    /// `Σµ` after the action, when known.
    pub mu_after: f64,
}

impl LifecycleEvent {
    /// One-line JSON rendering (stable key order). Every field is
    /// numeric or a fixed identifier except `label`, which is
    /// untrusted and therefore escaped.
    pub fn to_json(&self) -> String {
        let dataset = match self.dataset {
            Some(d) => d.to_string(),
            None => "null".to_string(),
        };
        let label = match &self.label {
            Some(l) => json::escape(l),
            None => "null".to_string(),
        };
        format!(
            concat!(
                "{{\"seq\":{},\"ns\":{},\"kind\":\"{}\",\"dataset\":{},",
                "\"label\":{},\"epoch\":{},\"dirty_cells\":{},",
                "\"duration_ns\":{},\"mu_before\":{},\"mu_after\":{}}}"
            ),
            self.seq,
            self.ns,
            self.kind.as_str(),
            dataset,
            label,
            self.epoch,
            self.dirty_cells,
            self.duration_ns,
            fmt_f64(self.mu_before),
            fmt_f64(self.mu_after),
        )
    }
}

/// JSON-safe f64: non-finite values have no JSON literal, so they
/// render as null.
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Builder for a [`LifecycleEvent`]; emitters fill in what they know
/// and [`EventBuilder::emit`] assigns `seq`/`ns` and publishes.
#[derive(Debug)]
#[must_use = "the event is only published by emit()"]
pub struct EventBuilder {
    kind: EventKind,
    dataset: Option<u64>,
    label: Option<String>,
    epoch: u64,
    dirty_cells: u64,
    duration_ns: u64,
    mu_before: f64,
    mu_after: f64,
}

impl EventBuilder {
    /// The dataset label, if the emitter knows one.
    pub fn dataset(mut self, dataset: Option<u64>) -> Self {
        self.dataset = dataset;
        self
    }

    /// Free-form context string (peer address, display label). Stored
    /// verbatim; JSON rendering escapes it.
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    /// Store epoch after the action.
    pub fn epoch(mut self, epoch: u64) -> Self {
        self.epoch = epoch;
        self
    }

    /// Cells rebuilt or repaired.
    pub fn dirty_cells(mut self, cells: u64) -> Self {
        self.dirty_cells = cells;
        self
    }

    /// Wall time of the action, nanoseconds.
    pub fn duration_ns(mut self, ns: u64) -> Self {
        self.duration_ns = ns;
        self
    }

    /// `Σµ` before and after the action.
    pub fn mu(mut self, before: f64, after: f64) -> Self {
        self.mu_before = before;
        self.mu_after = after;
        self
    }

    /// Publishes into the global [`journal`].
    pub fn emit(self) {
        journal().publish(self);
    }
}

/// Starts building an event of `kind` (publish with
/// [`EventBuilder::emit`]).
pub fn event(kind: EventKind) -> EventBuilder {
    EventBuilder {
        kind,
        dataset: None,
        label: None,
        epoch: 0,
        dirty_cells: 0,
        duration_ns: 0,
        mu_before: 0.0,
        mu_after: 0.0,
    }
}

type Listener = Box<dyn Fn(&LifecycleEvent) + Send + Sync>;

/// The bounded event log; see the module docs. Obtain the process
/// singleton with [`journal`].
pub struct Journal {
    inner: Mutex<Inner>,
    listeners: RwLock<Vec<Listener>>,
}

struct Inner {
    buf: VecDeque<LifecycleEvent>,
    next_seq: u64,
}

impl Journal {
    fn new() -> Self {
        Journal {
            inner: Mutex::new(Inner {
                buf: VecDeque::with_capacity(CAPACITY),
                next_seq: 1,
            }),
            listeners: RwLock::new(Vec::new()),
        }
    }

    fn publish(&self, b: EventBuilder) {
        let event = {
            let mut inner = self.inner.lock().unwrap();
            let event = LifecycleEvent {
                seq: inner.next_seq,
                // Stamped under the lock: seq and ns are monotone
                // together, so journal order is timestamp order.
                ns: clock::now_ns(),
                kind: b.kind,
                dataset: b.dataset,
                label: b.label,
                epoch: b.epoch,
                dirty_cells: b.dirty_cells,
                duration_ns: b.duration_ns,
                mu_before: b.mu_before,
                mu_after: b.mu_after,
            };
            inner.next_seq += 1;
            if inner.buf.len() == CAPACITY {
                inner.buf.pop_front();
            }
            inner.buf.push_back(event.clone());
            event
        };
        for listener in self.listeners.read().unwrap().iter() {
            listener(&event);
        }
    }

    /// The most recent `n` events, oldest first.
    pub fn recent(&self, n: usize) -> Vec<LifecycleEvent> {
        let inner = self.inner.lock().unwrap();
        let skip = inner.buf.len().saturating_sub(n);
        inner.buf.iter().skip(skip).cloned().collect()
    }

    /// Every retained event labelled with `dataset`, oldest first.
    pub fn for_dataset(&self, dataset: u64) -> Vec<LifecycleEvent> {
        let inner = self.inner.lock().unwrap();
        inner
            .buf
            .iter()
            .filter(|e| e.dataset == Some(dataset))
            .cloned()
            .collect()
    }

    /// Registers a callback invoked synchronously for every event
    /// published after this call (e.g. `--log-json` stderr logging).
    pub fn add_listener(&self, f: impl Fn(&LifecycleEvent) + Send + Sync + 'static) {
        self.listeners.write().unwrap().push(Box::new(f));
    }
}

/// The process-global journal.
pub fn journal() -> &'static Journal {
    static JOURNAL: OnceLock<Journal> = OnceLock::new();
    JOURNAL.get_or_init(Journal::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    // The journal is a process global shared with concurrently running
    // tests, so assertions filter by dataset labels unique to each
    // test.

    #[test]
    fn events_are_ordered_and_filtered_by_dataset() {
        event(EventKind::MinorSwap).dataset(Some(901)).emit();
        event(EventKind::CellPatch)
            .dataset(Some(901))
            .epoch(2)
            .dirty_cells(3)
            .emit();
        event(EventKind::Repair).dataset(Some(902)).emit();
        let events = journal().for_dataset(901);
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, EventKind::MinorSwap);
        assert_eq!(events[1].kind, EventKind::CellPatch);
        assert_eq!(events[1].dirty_cells, 3);
        assert!(events[0].seq < events[1].seq);
        assert!(events[0].ns <= events[1].ns);
        assert_eq!(journal().for_dataset(902).len(), 1);
    }

    #[test]
    fn json_rendering_is_stable() {
        let e = LifecycleEvent {
            seq: 5,
            ns: 123,
            kind: EventKind::Replan,
            dataset: Some(7),
            label: None,
            epoch: 2,
            dirty_cells: 0,
            duration_ns: 456,
            mu_before: 10.5,
            mu_after: 9.0,
        };
        assert_eq!(
            e.to_json(),
            "{\"seq\":5,\"ns\":123,\"kind\":\"replan\",\"dataset\":7,\
             \"label\":null,\"epoch\":2,\"dirty_cells\":0,\
             \"duration_ns\":456,\"mu_before\":10.5,\"mu_after\":9}"
        );
        let unlabelled = LifecycleEvent {
            dataset: None,
            mu_before: f64::NAN,
            ..e
        };
        let json = unlabelled.to_json();
        assert!(json.contains("\"dataset\":null"), "{json}");
        assert!(json.contains("\"mu_before\":null"), "{json}");
    }

    #[test]
    fn hostile_labels_are_json_escaped() {
        // Regression: a label with quotes, backslashes, and control
        // characters must not be interpolated raw — it would break out
        // of the JSON string and corrupt the `--log-json` stream.
        let e = LifecycleEvent {
            seq: 1,
            ns: 1,
            kind: EventKind::LoadShed,
            dataset: Some(1),
            label: Some("evil\"},{\"seq\":999\\\n\u{1}".to_string()),
            epoch: 0,
            dirty_cells: 0,
            duration_ns: 0,
            mu_before: 0.0,
            mu_after: 0.0,
        };
        let json = e.to_json();
        assert!(
            json.contains("\"label\":\"evil\\\"},{\\\"seq\\\":999\\\\\\n\\u0001\""),
            "{json}"
        );
        // The breakout sequence the raw interpolation would have
        // produced (an unescaped quote closing the string) is absent.
        assert!(!json.contains("\"},{\""), "{json}");
    }

    #[test]
    fn listeners_see_every_event() {
        let count = Arc::new(AtomicU64::new(0));
        let seen = Arc::clone(&count);
        journal().add_listener(move |e| {
            if e.dataset == Some(903) {
                seen.fetch_add(1, Ordering::Relaxed);
            }
        });
        event(EventKind::Compaction).dataset(Some(903)).emit();
        event(EventKind::FullRebuild).dataset(Some(903)).emit();
        assert_eq!(count.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn recent_is_bounded_and_oldest_first() {
        for _ in 0..10 {
            event(EventKind::BackpressurePark).dataset(Some(904)).emit();
        }
        let recent = journal().recent(3);
        assert_eq!(recent.len(), 3);
        // Other tests may interleave events, so only order is asserted.
        assert!(recent
            .windows(2)
            .all(|w| w[0].seq < w[1].seq && w[0].ns <= w[1].ns));
    }
}
