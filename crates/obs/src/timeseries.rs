//! A dependency-free in-process time-series database over the metrics
//! registry.
//!
//! A background [`Recorder`] snapshots every registered metric on a
//! fixed cadence ([`Registry::snapshot`]) and appends one point per
//! series into a bounded per-series ring:
//!
//! * **counters** become **rates** (delta / elapsed seconds, clamped
//!   at 0 across resets), because a monotone total is useless on a
//!   sparkline;
//! * **gauges** are stored as levels;
//! * **histograms** become two derived series — `<name>_count` as a
//!   rate (observations/sec) and `<name>_mean_recent` as a level (the
//!   mean of *this interval's* observations, `Δsum/Δcount`).
//!
//! Queries are windowed: [`SeriesStore::window`] returns raw points,
//! [`SeriesStore::rollup`] aggregates them into fixed buckets
//! (min/max/avg/last per bucket — 1 m and 5 m are the conventional
//! widths, see [`ROLLUP_1M_NS`]/[`ROLLUP_5M_NS`]) so a dashboard can
//! draw sparklines and rate-of-change without external tooling.
//!
//! Everything is bounded: each series keeps the newest
//! `capacity` points (512 by default — ~8.5 minutes of raw history at
//! a 1 s cadence), and series whose metric disappears simply stop
//! growing.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::clock;
use crate::metrics::{MetricSnapshot, ValueSnapshot};

/// Default points retained per series.
pub const DEFAULT_CAPACITY: usize = 512;

/// One-minute rollup bucket width in nanoseconds.
pub const ROLLUP_1M_NS: u64 = 60_000_000_000;

/// Five-minute rollup bucket width in nanoseconds.
pub const ROLLUP_5M_NS: u64 = 300_000_000_000;

/// One recorded point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Point {
    /// [`clock::now_ns`] at snapshot time.
    pub ns: u64,
    /// Rate (counters, histogram counts) or level (gauges, means).
    pub value: f64,
}

/// How a series' points were derived — consumers render rates and
/// levels differently.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SeriesKind {
    /// Per-second rate derived from a monotone counter.
    Rate,
    /// Instantaneous level (gauge or derived mean).
    Level,
}

impl SeriesKind {
    /// Stable lower-case name for JSON output.
    pub fn as_str(self) -> &'static str {
        match self {
            SeriesKind::Rate => "rate",
            SeriesKind::Level => "level",
        }
    }
}

/// One rollup bucket: the aggregate of every raw point whose
/// timestamp falls in `[start_ns, start_ns + width)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Rollup {
    /// Bucket start (aligned down to the bucket width).
    pub start_ns: u64,
    /// Minimum raw value in the bucket.
    pub min: f64,
    /// Maximum raw value in the bucket.
    pub max: f64,
    /// Mean of the raw values in the bucket.
    pub avg: f64,
    /// The newest raw value in the bucket.
    pub last: f64,
    /// Raw points aggregated.
    pub count: u64,
}

struct Series {
    kind: SeriesKind,
    points: VecDeque<Point>,
    /// Previous raw counter/count/sum values, for delta conversion.
    prev_counter: u64,
    prev_sum: u64,
    prev_ns: u64,
    seen: bool,
}

impl Series {
    fn new(kind: SeriesKind) -> Self {
        Series {
            kind,
            points: VecDeque::new(),
            prev_counter: 0,
            prev_sum: 0,
            prev_ns: 0,
            seen: false,
        }
    }

    fn push(&mut self, p: Point, capacity: usize) {
        if self.points.len() >= capacity {
            self.points.pop_front();
        }
        self.points.push_back(p);
    }
}

/// The bounded per-series storage; shared between the recorder thread
/// and query surfaces (`/vars`, dashboards).
pub struct SeriesStore {
    capacity: usize,
    series: Mutex<BTreeMap<(String, String), Series>>,
}

impl SeriesStore {
    /// A store retaining `capacity` raw points per series.
    pub fn new(capacity: usize) -> Self {
        SeriesStore {
            capacity: capacity.max(2),
            series: Mutex::new(BTreeMap::new()),
        }
    }

    /// Ingests one registry snapshot taken at `ns`. Counter deltas are
    /// divided by the elapsed time since the series' previous point;
    /// a counter that went backwards (process restart, `store()`
    /// mirror glitch) records a 0 rate rather than a negative spike.
    pub fn ingest(&self, ns: u64, snapshot: &[MetricSnapshot]) {
        let mut series = self.series.lock().unwrap();
        for m in snapshot {
            match m.value {
                ValueSnapshot::Counter(v) => {
                    let s = series
                        .entry((m.name.clone(), m.labels.clone()))
                        .or_insert_with(|| Series::new(SeriesKind::Rate));
                    if s.seen {
                        let rate = rate_of(s.prev_counter, v, s.prev_ns, ns);
                        s.push(Point { ns, value: rate }, self.capacity);
                    }
                    s.prev_counter = v;
                    s.prev_ns = ns;
                    s.seen = true;
                }
                ValueSnapshot::Gauge(v) => {
                    let s = series
                        .entry((m.name.clone(), m.labels.clone()))
                        .or_insert_with(|| Series::new(SeriesKind::Level));
                    s.push(Point { ns, value: v }, self.capacity);
                    s.prev_ns = ns;
                    s.seen = true;
                }
                ValueSnapshot::Histogram { count, sum } => {
                    let rate_name = format!("{}_count", m.name);
                    let mean_name = format!("{}_mean_recent", m.name);
                    let (d_count, d_sum, interval_rate) = {
                        let s = series
                            .entry((rate_name, m.labels.clone()))
                            .or_insert_with(|| Series::new(SeriesKind::Rate));
                        let (dc, dsum, rate) = if s.seen {
                            let rate = rate_of(s.prev_counter, count, s.prev_ns, ns);
                            (
                                count.saturating_sub(s.prev_counter),
                                sum.saturating_sub(s.prev_sum),
                                Some(rate),
                            )
                        } else {
                            (0, 0, None)
                        };
                        if let Some(rate) = rate {
                            s.push(Point { ns, value: rate }, self.capacity);
                        }
                        s.prev_counter = count;
                        s.prev_sum = sum;
                        s.prev_ns = ns;
                        s.seen = true;
                        (dc, dsum, rate)
                    };
                    // Mean of this interval's observations; an idle
                    // interval repeats the previous mean (0 if none)
                    // so the series stays dense for sparklines.
                    if interval_rate.is_some() {
                        let s = series
                            .entry((mean_name, m.labels.clone()))
                            .or_insert_with(|| Series::new(SeriesKind::Level));
                        let mean = if d_count > 0 {
                            d_sum as f64 / d_count as f64
                        } else {
                            s.points.back().map_or(0.0, |p| p.value)
                        };
                        s.push(Point { ns, value: mean }, self.capacity);
                        s.seen = true;
                    }
                }
            }
        }
    }

    /// Every series name currently held, with its labels and kind.
    pub fn series_names(&self) -> Vec<(String, String, SeriesKind)> {
        let series = self.series.lock().unwrap();
        series
            .iter()
            .map(|((name, labels), s)| (name.clone(), labels.clone(), s.kind))
            .collect()
    }

    /// Raw points for `(name, labels)` newer than `since_ns`, oldest
    /// first (empty for an unknown series).
    pub fn window(&self, name: &str, labels: &str, since_ns: u64) -> Vec<Point> {
        let series = self.series.lock().unwrap();
        match series.get(&(name.to_string(), labels.to_string())) {
            Some(s) => s
                .points
                .iter()
                .filter(|p| p.ns >= since_ns)
                .copied()
                .collect(),
            None => Vec::new(),
        }
    }

    /// Fixed-width rollups (min/max/avg/last per bucket) over the raw
    /// window, oldest bucket first. `bucket_ns` of [`ROLLUP_1M_NS`] or
    /// [`ROLLUP_5M_NS`] gives the conventional 1 m / 5 m views.
    pub fn rollup(&self, name: &str, labels: &str, bucket_ns: u64, since_ns: u64) -> Vec<Rollup> {
        let bucket_ns = bucket_ns.max(1);
        let raw = self.window(name, labels, since_ns);
        let mut out: Vec<Rollup> = Vec::new();
        for p in raw {
            let start_ns = p.ns - (p.ns % bucket_ns);
            match out.last_mut() {
                Some(b) if b.start_ns == start_ns => {
                    b.min = b.min.min(p.value);
                    b.max = b.max.max(p.value);
                    // Incremental mean keeps one pass.
                    b.avg += (p.value - b.avg) / (b.count + 1) as f64;
                    b.last = p.value;
                    b.count += 1;
                }
                _ => out.push(Rollup {
                    start_ns,
                    min: p.value,
                    max: p.value,
                    avg: p.value,
                    last: p.value,
                    count: 1,
                }),
            }
        }
        out
    }
}

fn rate_of(prev: u64, cur: u64, prev_ns: u64, ns: u64) -> f64 {
    let dt = ns.saturating_sub(prev_ns) as f64 / 1e9;
    if dt <= 0.0 || cur < prev {
        return 0.0;
    }
    (cur - prev) as f64 / dt
}

/// The background recorder: owns a snapshot closure (so it works
/// against any registry the embedder holds) and a thread that calls
/// [`SeriesStore::ingest`] every `cadence`. Stop with
/// [`Recorder::stop`]; dropping stops it too.
pub struct Recorder {
    store: Arc<SeriesStore>,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Recorder {
    /// Starts recording `snapshot()` into a fresh store every
    /// `cadence` (floored at 10 ms so a mis-configured cadence cannot
    /// busy-spin).
    pub fn start(
        cadence: Duration,
        capacity: usize,
        snapshot: impl Fn() -> Vec<MetricSnapshot> + Send + 'static,
    ) -> Recorder {
        let store = Arc::new(SeriesStore::new(capacity));
        let stop = Arc::new(AtomicBool::new(false));
        let cadence = cadence.max(Duration::from_millis(10));
        let handle = {
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("srj-tsdb".into())
                .spawn(move || {
                    // Seed the deltas immediately so the first real
                    // tick can already emit rates.
                    store.ingest(clock::now_ns(), &snapshot());
                    while !stop.load(Ordering::Relaxed) {
                        std::thread::sleep(cadence);
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                        store.ingest(clock::now_ns(), &snapshot());
                    }
                })
                .expect("spawn tsdb recorder")
        };
        Recorder {
            store,
            stop,
            handle: Some(handle),
        }
    }

    /// The shared store, for query surfaces.
    pub fn store(&self) -> Arc<SeriesStore> {
        Arc::clone(&self.store)
    }

    /// Stops and joins the recorder thread (idempotent).
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Recorder {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    fn snap(reg: &Registry) -> Vec<MetricSnapshot> {
        reg.snapshot()
    }

    #[test]
    fn counters_become_rates() {
        let reg = Registry::new();
        let c = reg.counter("reqs_total", &[("dataset", "1")]);
        let store = SeriesStore::new(16);
        c.add(100);
        store.ingest(1_000_000_000, &snap(&reg)); // seed: no point yet
        c.add(50);
        store.ingest(2_000_000_000, &snap(&reg)); // +50 in 1s
        c.add(200);
        store.ingest(4_000_000_000, &snap(&reg)); // +200 in 2s
        let pts = store.window("reqs_total", "dataset=\"1\"", 0);
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].value, 50.0);
        assert_eq!(pts[1].value, 100.0);
    }

    #[test]
    fn counter_resets_clamp_to_zero_rate() {
        let reg = Registry::new();
        let c = reg.counter("x_total", &[]);
        let store = SeriesStore::new(16);
        c.store(100);
        store.ingest(1_000_000_000, &snap(&reg));
        c.store(10); // went backwards
        store.ingest(2_000_000_000, &snap(&reg));
        let pts = store.window("x_total", "", 0);
        assert_eq!(pts.len(), 1);
        assert_eq!(pts[0].value, 0.0);
    }

    #[test]
    fn gauges_are_levels_and_windows_filter_by_time() {
        let reg = Registry::new();
        let g = reg.gauge("mu", &[]);
        let store = SeriesStore::new(16);
        for (ns, v) in [(1u64, 5.0), (2, 7.0), (3, 6.0)] {
            g.set(v);
            store.ingest(ns * 1_000_000_000, &snap(&reg));
        }
        assert_eq!(store.window("mu", "", 0).len(), 3);
        let late = store.window("mu", "", 2_000_000_000);
        assert_eq!(late.len(), 2);
        assert_eq!(late[0].value, 7.0);
    }

    #[test]
    fn histograms_derive_count_rate_and_recent_mean() {
        let reg = Registry::new();
        let h = reg.histogram("lat_ns", &[]);
        let store = SeriesStore::new(16);
        h.observe(100);
        store.ingest(1_000_000_000, &snap(&reg));
        h.observe(200);
        h.observe(400);
        store.ingest(2_000_000_000, &snap(&reg));
        let rate = store.window("lat_ns_count", "", 0);
        assert_eq!(rate.len(), 1);
        assert_eq!(rate[0].value, 2.0); // 2 observations in 1s
        let mean = store.window("lat_ns_mean_recent", "", 0);
        assert_eq!(mean.len(), 1);
        assert_eq!(mean[0].value, 300.0); // (200+400)/2, not the lifetime mean
                                          // An idle interval repeats the previous mean.
        store.ingest(3_000_000_000, &snap(&reg));
        let mean = store.window("lat_ns_mean_recent", "", 0);
        assert_eq!(mean.len(), 2);
        assert_eq!(mean[1].value, 300.0);
    }

    #[test]
    fn rings_are_bounded() {
        let reg = Registry::new();
        let g = reg.gauge("g", &[]);
        let store = SeriesStore::new(4);
        for i in 0..20u64 {
            g.set(i as f64);
            store.ingest(i * 1_000_000_000, &snap(&reg));
        }
        let pts = store.window("g", "", 0);
        assert_eq!(pts.len(), 4);
        assert_eq!(pts[3].value, 19.0); // newest retained
        assert_eq!(pts[0].value, 16.0); // oldest dropped
    }

    #[test]
    fn rollups_aggregate_min_max_avg_last() {
        let reg = Registry::new();
        let g = reg.gauge("g", &[]);
        let store = SeriesStore::new(64);
        // Two 1-minute buckets: values 1..=3 in minute 0, 10 in minute 1.
        for (sec, v) in [(10u64, 1.0), (20, 3.0), (30, 2.0), (70, 10.0)] {
            g.set(v);
            store.ingest(sec * 1_000_000_000, &snap(&reg));
        }
        let buckets = store.rollup("g", "", ROLLUP_1M_NS, 0);
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[0].min, 1.0);
        assert_eq!(buckets[0].max, 3.0);
        assert_eq!(buckets[0].avg, 2.0);
        assert_eq!(buckets[0].last, 2.0);
        assert_eq!(buckets[0].count, 3);
        assert_eq!(buckets[1].count, 1);
        assert_eq!(buckets[1].start_ns, ROLLUP_1M_NS);
    }

    #[test]
    fn recorder_thread_records_and_stops() {
        let reg = Arc::new(Registry::new());
        let c = reg.counter("ticks_total", &[]);
        let snapshot = {
            let reg = Arc::clone(&reg);
            move || reg.snapshot()
        };
        let mut rec = Recorder::start(Duration::from_millis(10), 64, snapshot);
        let store = rec.store();
        for _ in 0..200 {
            c.add(10);
            if !store.window("ticks_total", "", 0).is_empty() {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        rec.stop();
        let pts = store.window("ticks_total", "", 0);
        assert!(!pts.is_empty(), "recorder never ticked");
        // Stopped: no further growth.
        let n = store.window("ticks_total", "", 0).len();
        c.add(1000);
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(store.window("ticks_total", "", 0).len(), n);
    }
}
