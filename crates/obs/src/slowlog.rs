//! Tail-based slow-request capture.
//!
//! The cheap half is in [`crate::trace`]: with always-on recording
//! ([`crate::trace::set_always_record`]) every request gets a forced
//! trace id and leaves its span records in the lock-free rings — a
//! few relaxed atomics per stage, paid unconditionally. The rings
//! wrap, so fast requests evaporate on their own.
//!
//! The expensive half happens only for requests that *finish slow*:
//! the server compares the request's wall time against a threshold
//! (absolute, or derived from the live latency histogram's p99) and,
//! on breach, snapshots the full span tree plus request context into
//! this bounded [`SlowLog`]. Retention is newest-first FIFO: the log
//! keeps the most recent `capacity` slow requests and drops the
//! oldest. Entries are fetched over the wire (`SLOWLOG` frame) or
//! rendered into `/vars`.

use std::collections::VecDeque;
use std::sync::Mutex;

use crate::json;
use crate::trace;

/// One captured span, owned (the ring records resolve to
/// `&'static str`, but an entry must outlive ring wraparound).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SlowSpan {
    /// [`crate::clock::now_ns`] at record time.
    pub ns: u64,
    /// Instrumented stage (e.g. `draw_loop`).
    pub span: String,
    /// What happened in the stage (e.g. `begin`).
    pub event: String,
}

/// One retained slow request: full request context plus the span tree
/// snapshotted at completion.
#[derive(Clone, Debug, PartialEq)]
pub struct SlowEntry {
    /// The request's (forced or sampled) trace id.
    pub trace_id: u64,
    /// [`crate::clock::now_ns`] when the request finished.
    pub finished_ns: u64,
    /// Served dataset id.
    pub dataset: u64,
    /// Requested sample count.
    pub t: u64,
    /// Serving algorithm name (`auto` when the planner chose).
    pub algorithm: String,
    /// Dataset epoch the request was served against.
    pub epoch: u64,
    /// Rejection-loop iterations the request burned.
    pub iterations: u64,
    /// Time between frame decode and the first worker step.
    pub queue_wait_ns: u64,
    /// End-to-end wall time.
    pub elapsed_ns: u64,
    /// The span tree, oldest first (what the rings still held).
    pub spans: Vec<SlowSpan>,
}

impl SlowEntry {
    /// Snapshots whatever the rings still hold for `trace_id` into an
    /// owned span list, oldest first.
    pub fn capture_spans(trace_id: u64) -> Vec<SlowSpan> {
        trace::spans_for(trace_id)
            .into_iter()
            .map(|r| SlowSpan {
                ns: r.ns,
                span: r.span.to_string(),
                event: r.event.to_string(),
            })
            .collect()
    }

    /// One-line JSON rendering for `/vars` (algorithm is the only
    /// string field; it is fixed-vocabulary today but escaped anyway).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(160 + self.spans.len() * 48);
        out.push_str(&format!(
            "{{\"trace_id\":{},\"finished_ns\":{},\"dataset\":{},\"t\":{},\
             \"algorithm\":{},\"epoch\":{},\"iterations\":{},\
             \"queue_wait_ns\":{},\"elapsed_ns\":{},\"spans\":[",
            self.trace_id,
            self.finished_ns,
            self.dataset,
            self.t,
            json::escape(&self.algorithm),
            self.epoch,
            self.iterations,
            self.queue_wait_ns,
            self.elapsed_ns,
        ));
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"ns\":{},\"span\":{},\"event\":{}}}",
                s.ns,
                json::escape(&s.span),
                json::escape(&s.event)
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Bounded retention of the most recent slow requests. `capacity` 0
/// disables retention entirely (`record` is a no-op).
pub struct SlowLog {
    capacity: usize,
    inner: Mutex<VecDeque<SlowEntry>>,
}

impl SlowLog {
    /// A log retaining at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        SlowLog {
            capacity,
            inner: Mutex::new(VecDeque::new()),
        }
    }

    /// Whether recording is enabled at all.
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Retains `entry`, dropping the oldest past capacity.
    pub fn record(&self, entry: SlowEntry) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock().unwrap();
        if inner.len() >= self.capacity {
            inner.pop_front();
        }
        inner.push_back(entry);
    }

    /// The most recent `n` entries, newest first (a tail view).
    pub fn recent(&self, n: usize) -> Vec<SlowEntry> {
        let inner = self.inner.lock().unwrap();
        inner.iter().rev().take(n).cloned().collect()
    }

    /// Entries currently retained.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    /// Whether the log holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(trace_id: u64, elapsed_ns: u64) -> SlowEntry {
        SlowEntry {
            trace_id,
            finished_ns: trace_id * 10,
            dataset: 1,
            t: 1000,
            algorithm: "bbst".to_string(),
            epoch: 2,
            iterations: 5,
            queue_wait_ns: 100,
            elapsed_ns,
            spans: vec![SlowSpan {
                ns: 1,
                span: "draw_loop".into(),
                event: "begin".into(),
            }],
        }
    }

    #[test]
    fn retention_is_bounded_and_newest_first() {
        let log = SlowLog::new(3);
        for i in 1..=5 {
            log.record(entry(i, i * 1000));
        }
        assert_eq!(log.len(), 3);
        let recent = log.recent(10);
        assert_eq!(recent.len(), 3);
        assert_eq!(recent[0].trace_id, 5); // newest first
        assert_eq!(recent[2].trace_id, 3); // 1 and 2 dropped
        assert_eq!(log.recent(1).len(), 1);
    }

    #[test]
    fn zero_capacity_disables_recording() {
        let log = SlowLog::new(0);
        assert!(!log.enabled());
        log.record(entry(1, 1));
        assert!(log.is_empty());
    }

    #[test]
    fn capture_spans_snapshots_the_rings() {
        // event_for bypasses the sampling switch, so this test does
        // not toggle process-global trace state.
        let id = trace::start_trace_forced();
        trace::event_for(id, "acquire", "begin");
        trace::event_for(id, "draw_loop", "begin");
        let spans = SlowEntry::capture_spans(id);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].span, "acquire");
        assert_eq!(spans[1].span, "draw_loop");
        assert!(spans[0].ns <= spans[1].ns);
        assert!(SlowEntry::capture_spans(0).is_empty());
    }

    #[test]
    fn json_rendering_is_wellformed() {
        let e = entry(7, 9000);
        let json = e.to_json();
        assert!(json.starts_with("{\"trace_id\":7,"), "{json}");
        assert!(json.contains("\"algorithm\":\"bbst\""), "{json}");
        assert!(
            json.contains("\"spans\":[{\"ns\":1,\"span\":\"draw_loop\",\"event\":\"begin\"}]"),
            "{json}"
        );
    }
}
