//! A sampling worker-state profiler.
//!
//! Each participating thread (worker, connection reader) registers a
//! [`StateTag`] and publishes its current [`WorkerState`] with one
//! relaxed store at each stage transition — the publishing side never
//! blocks and never allocates. A sampler thread (the server's
//! maintainer) calls [`Profiler::sample`] on its sweep cadence: every
//! live tag contributes one observation to the per-state counters,
//! yielding a statistical "where does worker time go" breakdown
//! without per-stage timers on the hot path.
//!
//! **Bias caveats** (documented, not corrected): states shorter than
//! the sampling interval are under-represented; the sampler observes
//! wall states, so a `Draw` tag covers both CPU work and involuntary
//! preemption; and tags are sampled at sweep boundaries, which can
//! alias with periodic work. The breakdown is for *ratios between
//! states over time*, not absolute microsecond accounting.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, Weak};

/// What a serving thread is doing right now.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum WorkerState {
    /// Blocked waiting for work (queue pop, socket read idle).
    Idle = 0,
    /// Decoding a request frame (reader threads).
    Decode = 1,
    /// Acquiring an engine/handle (cache lookup, possibly a build).
    Acquire = 2,
    /// In the sampling draw loop.
    Draw = 3,
    /// Encoding/queueing response frames.
    Write = 4,
    /// Parked on a full response queue (backpressure).
    Park = 5,
}

/// Every state, in tag-value order.
pub const ALL_STATES: [WorkerState; 6] = [
    WorkerState::Idle,
    WorkerState::Decode,
    WorkerState::Acquire,
    WorkerState::Draw,
    WorkerState::Write,
    WorkerState::Park,
];

impl WorkerState {
    /// Stable lower-case name, used as the `state` metric label.
    pub fn as_str(self) -> &'static str {
        match self {
            WorkerState::Idle => "idle",
            WorkerState::Decode => "decode",
            WorkerState::Acquire => "acquire",
            WorkerState::Draw => "draw",
            WorkerState::Write => "write",
            WorkerState::Park => "park",
        }
    }

    fn from_u8(v: u8) -> WorkerState {
        ALL_STATES
            .get(v as usize)
            .copied()
            .unwrap_or(WorkerState::Idle)
    }
}

/// A thread's published state cell. Threads keep the `Arc` and call
/// [`StateTag::set`] at stage transitions; the profiler holds only a
/// `Weak`, so a finished thread's tag disappears from sampling on its
/// own.
#[derive(Debug)]
pub struct StateTag(AtomicU8);

impl StateTag {
    /// Publishes the thread's current state (one relaxed store).
    #[inline]
    pub fn set(&self, state: WorkerState) {
        self.0.store(state as u8, Ordering::Relaxed);
    }

    /// The last published state.
    pub fn get(&self) -> WorkerState {
        WorkerState::from_u8(self.0.load(Ordering::Relaxed))
    }
}

/// The registry of live tags plus the accumulated per-state sample
/// counters.
#[derive(Debug, Default)]
pub struct Profiler {
    tags: Mutex<Vec<Weak<StateTag>>>,
    counts: [AtomicU64; 6],
    samples: AtomicU64,
}

impl Profiler {
    /// A fresh profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new participating thread, initially `Idle`.
    pub fn register(&self) -> Arc<StateTag> {
        let tag = Arc::new(StateTag(AtomicU8::new(WorkerState::Idle as u8)));
        self.tags.lock().unwrap().push(Arc::downgrade(&tag));
        tag
    }

    /// Takes one sample: every live tag contributes one observation
    /// to its current state's counter; dead tags are pruned. Returns
    /// the number of live tags observed.
    pub fn sample(&self) -> usize {
        let mut tags = self.tags.lock().unwrap();
        let mut live = 0;
        tags.retain(|weak| match weak.upgrade() {
            Some(tag) => {
                self.counts[tag.get() as u8 as usize].fetch_add(1, Ordering::Relaxed);
                live += 1;
                true
            }
            None => false,
        });
        if live > 0 {
            self.samples.fetch_add(1, Ordering::Relaxed);
        }
        live
    }

    /// Accumulated observations per state, in [`ALL_STATES`] order.
    pub fn counts(&self) -> [u64; 6] {
        std::array::from_fn(|i| self.counts[i].load(Ordering::Relaxed))
    }

    /// Sampling sweeps taken so far (those that saw ≥ 1 live tag).
    pub fn samples(&self) -> u64 {
        self.samples.load(Ordering::Relaxed)
    }

    /// Currently registered live tags.
    pub fn live_tags(&self) -> usize {
        self.tags
            .lock()
            .unwrap()
            .iter()
            .filter(|w| w.strong_count() > 0)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_accumulate_into_state_counters() {
        let p = Profiler::new();
        let a = p.register();
        let b = p.register();
        a.set(WorkerState::Draw);
        b.set(WorkerState::Idle);
        assert_eq!(p.sample(), 2);
        a.set(WorkerState::Write);
        assert_eq!(p.sample(), 2);
        let counts = p.counts();
        assert_eq!(counts[WorkerState::Draw as usize], 1);
        assert_eq!(counts[WorkerState::Write as usize], 1);
        assert_eq!(counts[WorkerState::Idle as usize], 2);
        assert_eq!(p.samples(), 2);
    }

    #[test]
    fn dropped_tags_leave_the_sample_set() {
        let p = Profiler::new();
        let a = p.register();
        let b = p.register();
        b.set(WorkerState::Park);
        assert_eq!(p.live_tags(), 2);
        drop(b);
        assert_eq!(p.sample(), 1);
        assert_eq!(p.live_tags(), 1);
        a.set(WorkerState::Idle);
        // Only `a` contributes now.
        let before = p.counts()[WorkerState::Park as usize];
        p.sample();
        assert_eq!(p.counts()[WorkerState::Park as usize], before);
    }

    #[test]
    fn state_names_are_stable() {
        let names: Vec<&str> = ALL_STATES.iter().map(|s| s.as_str()).collect();
        assert_eq!(
            names,
            ["idle", "decode", "acquire", "draw", "write", "park"]
        );
        // Round-trip through the u8 representation.
        for s in ALL_STATES {
            assert_eq!(WorkerState::from_u8(s as u8), s);
        }
        assert_eq!(WorkerState::from_u8(200), WorkerState::Idle);
    }
}
