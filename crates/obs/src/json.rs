//! Minimal JSON string escaping shared by every JSON-producing
//! surface in the stack (journal `to_json`, the server's `/vars`
//! endpoint, slow-log dumps). Only the escaping rules of RFC 8259
//! §7 are implemented — quotes, backslashes, and control characters —
//! because that is the entire attack surface of interpolating an
//! untrusted label into an otherwise numeric document.

/// Appends `s` to `out` with JSON string escaping (no surrounding
/// quotes).
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// `s` as a quoted, escaped JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    escape_into(&mut out, s);
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_strings_pass_through() {
        assert_eq!(escape("uniform:0.02"), "\"uniform:0.02\"");
    }

    #[test]
    fn quotes_backslashes_and_controls_escape() {
        assert_eq!(
            escape("a\"b\\c\nd\re\tf\u{1}"),
            "\"a\\\"b\\\\c\\nd\\re\\tf\\u0001\""
        );
    }

    #[test]
    fn unicode_is_preserved_verbatim() {
        assert_eq!(escape("µ-Σ"), "\"µ-Σ\"");
    }
}
