//! # `srj-obs` — observability substrate for the sampling engine
//!
//! A dependency-free (std-only) observability layer shared by every
//! crate in the workspace, built from three independent pieces:
//!
//! * [`metrics`] — a **registry** of named counters, gauges, and
//!   log₂-bucketed histograms. Handles ([`Counter`], [`Gauge`],
//!   [`Histogram`]) are cheap `Arc` clones cached at call sites, so
//!   the hot path is a single relaxed atomic add; the registry itself
//!   is only locked to register a metric or to render the
//!   Prometheus-style text exposition ([`Registry::render`]).
//! * [`trace`] — **sampled span tracing**. A request that wins the
//!   sampling coin-flip ([`trace::try_start_trace`]) gets a nonzero
//!   trace id; every layer it passes through appends
//!   `(trace_id, span, event, ns)` records into per-thread lock-free
//!   ring buffers. When tracing is disabled (the default) the
//!   per-event cost is one relaxed load and a branch.
//! * [`journal`] — a bounded in-memory **lifecycle event log**. Epoch
//!   swaps, cell patches, repairs, re-plans, compactions, and
//!   backpressure parks emit a structured [`LifecycleEvent`]
//!   (dataset, epoch, rung, dirty cells, duration, Σµ before/after)
//!   with process-monotone sequence numbers and timestamps.
//!
//! On top of the live layer sit the history-and-analysis pieces:
//!
//! * [`timeseries`] — an in-process TSDB: a background [`Recorder`]
//!   snapshots every registered metric on a cadence into bounded
//!   per-series rings (counters become rates), with windowed raw and
//!   min/max/avg/last rollup queries for sparklines.
//! * [`slowlog`] — tail-based slow-request capture: always-on span
//!   rings (see [`trace::set_always_record`]) plus a bounded
//!   [`SlowLog`] that retains full span trees and request context
//!   only for requests that finished over a latency threshold.
//! * [`profiler`] — a sampling worker-state profiler: threads publish
//!   a relaxed [`WorkerState`] tag, a sampler turns the tags into
//!   per-state counters.
//! * [`json`] — the shared JSON string-escaping helper every
//!   JSON-producing surface uses for untrusted labels.
//!
//! The trace sink and the journal are process-global singletons —
//! engine-internal code cannot be plumbed an instance — while the
//! metrics [`Registry`] is a value the embedding layer (the server)
//! owns, so tests and multiple servers in one process do not share
//! counters.

pub mod clock;
pub mod journal;
pub mod json;
pub mod metrics;
pub mod profiler;
pub mod slowlog;
pub mod timeseries;
pub mod trace;

pub use journal::{journal, EventBuilder, EventKind, Journal, LifecycleEvent};
pub use metrics::{Counter, Gauge, Histogram, MetricSnapshot, Registry, ValueSnapshot};
pub use profiler::{Profiler, StateTag, WorkerState};
pub use slowlog::{SlowEntry, SlowLog, SlowSpan};
pub use timeseries::{Recorder, Rollup, SeriesStore};
pub use trace::{SpanRecord, TraceGuard};
