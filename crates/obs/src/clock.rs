//! A process-monotone nanosecond clock.
//!
//! Trace records and journal events carry timestamps from one shared
//! origin (the first call in the process), so nanosecond deltas
//! between any two records are meaningful and `u64` never overflows
//! in practice (585 years of uptime).

use std::sync::OnceLock;
use std::time::Instant;

static START: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds elapsed since the process-wide clock origin.
///
/// Monotone: never decreases across threads (modulo the platform's
/// `Instant` guarantees, which are monotonic by contract).
pub fn now_ns() -> u64 {
    START.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotone() {
        let a = now_ns();
        let b = now_ns();
        let c = now_ns();
        assert!(a <= b && b <= c);
    }
}
