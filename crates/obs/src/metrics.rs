//! A metrics registry: named counters, gauges, and log₂-bucketed
//! histograms behind relaxed atomics.
//!
//! The intended shape: the embedding layer registers each metric
//! **once** and caches the returned typed handle ([`Counter`],
//! [`Gauge`], [`Histogram`]) at the call site — handles are `Arc`
//! clones, so recording is a single relaxed `fetch_add` with no lock
//! and no name lookup on the hot path. The [`Registry`] itself is a
//! value (not a global): the server owns one, tests own their own,
//! and nothing leaks between them.
//!
//! [`Registry::render`] produces the Prometheus text exposition
//! format, which is what the `METRICS` wire frame and `srj-top`
//! consume.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Number of log₂ histogram buckets: bucket `i` holds observations in
/// `[2^i, 2^(i+1))`; bucket 63 is the overflow bucket. Matches the
/// engine's historical latency histogram resolution.
pub const BUCKETS: usize = 64;

/// Bucket index for an observation: `floor(log2(v))`, clamped.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (63 - v.leading_zeros() as usize).min(BUCKETS - 1)
    }
}

/// A monotone counter. `Clone` shares the underlying cell.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A fresh standalone counter (usable outside any registry).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrites the value — for mirroring an externally maintained
    /// monotone counter (e.g. an engine-internal atomic) into the
    /// registry at scrape time. Not for hot-path use.
    pub fn store(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An `f64` gauge (stored as bits). `Clone` shares the underlying cell.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// A fresh standalone gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistInner {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

/// A log₂-bucketed histogram. `Clone` shares the underlying cells.
///
/// Quantiles are bucket-resolution accurate (within a factor of 2) —
/// the standard trade-off for lock-free serving-side p99 tracking.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistInner>);

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// A fresh standalone histogram (usable outside any registry).
    pub fn new() -> Self {
        Histogram(Arc::new(HistInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }))
    }

    /// Records one observation (three relaxed adds).
    #[inline]
    pub fn observe(&self, v: u64) {
        self.0.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds (saturating at `u64::MAX`).
    #[inline]
    pub fn observe_duration(&self, d: Duration) {
        self.observe(d.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum().checked_div(self.count()).unwrap_or(0)
    }

    /// A point-in-time copy of the bucket counts.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.0
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Bucket-resolution quantile: the geometric midpoint of the
    /// bucket containing the q-th ranked observation (0 when empty).
    pub fn quantile(&self, q: f64) -> u64 {
        quantile_of(&self.bucket_counts(), q)
    }
}

/// Bucket-resolution quantile over raw log₂ bucket counts. The rank
/// covers the slowest `(1−q)` fraction: with 100 observations, p99 is
/// the 100th-ranked (max), p50 the 51st.
pub fn quantile_of(buckets: &[u64], q: f64) -> u64 {
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return 0;
    }
    let rank = ((total as f64 * q).floor() as u64 + 1).clamp(1, total);
    let mut seen = 0u64;
    for (i, &count) in buckets.iter().enumerate() {
        seen += count;
        if seen >= rank {
            // Bucket i spans [2^i, 2^(i+1)); report its geometric mean.
            let lo = 1u64 << i.min(63);
            return (lo as f64 * std::f64::consts::SQRT_2) as u64;
        }
    }
    0
}

/// One metric's value at snapshot time (see [`Registry::snapshot`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ValueSnapshot {
    /// Monotone counter value.
    Counter(u64),
    /// Gauge level.
    Gauge(f64),
    /// Histogram totals; the recorder derives rate and recent mean
    /// from consecutive `count`/`sum` deltas.
    Histogram {
        /// Observations so far.
        count: u64,
        /// Sum of observed values so far.
        sum: u64,
    },
}

/// One `(name, labels, value)` triple from [`Registry::snapshot`].
/// `labels` is the canonical sorted label key (`dataset="7"`), the
/// same string the text exposition renders.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricSnapshot {
    /// Family name (e.g. `srj_requests_total`).
    pub name: String,
    /// Canonical rendered label key; empty for unlabelled metrics.
    pub labels: String,
    /// The value at snapshot time.
    pub value: ValueSnapshot,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

#[derive(Clone, Debug)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

#[derive(Debug)]
struct Family {
    kind: Kind,
    // Keyed by the rendered label string (`dataset="7"`), so render
    // output is deterministic and get-or-create is one BTreeMap probe.
    entries: BTreeMap<String, Metric>,
}

/// A registry of named metrics with Prometheus text exposition.
///
/// Registration (`counter` / `gauge` / `histogram`) is get-or-create:
/// the same `(name, labels)` always yields a handle to the same
/// underlying cells. Registering one name with two different metric
/// kinds is a programming error and panics.
#[derive(Debug, Default)]
pub struct Registry {
    families: Mutex<BTreeMap<String, Family>>,
}

fn label_key(labels: &[(&str, &str)]) -> String {
    let mut parts: Vec<String> = labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
    parts.sort();
    parts.join(",")
}

impl Registry {
    /// A fresh empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn get_or_create(&self, name: &str, labels: &[(&str, &str)], kind: Kind) -> Metric {
        let mut families = self.families.lock().unwrap();
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            kind,
            entries: BTreeMap::new(),
        });
        assert!(
            family.kind == kind,
            "metric {name:?} registered as {} and {}",
            family.kind.as_str(),
            kind.as_str()
        );
        family
            .entries
            .entry(label_key(labels))
            .or_insert_with(|| match kind {
                Kind::Counter => Metric::Counter(Counter::new()),
                Kind::Gauge => Metric::Gauge(Gauge::new()),
                Kind::Histogram => Metric::Histogram(Histogram::new()),
            })
            .clone()
    }

    /// Get-or-create a counter for `(name, labels)`.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        match self.get_or_create(name, labels, Kind::Counter) {
            Metric::Counter(c) => c,
            _ => unreachable!(),
        }
    }

    /// Get-or-create a gauge for `(name, labels)`.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.get_or_create(name, labels, Kind::Gauge) {
            Metric::Gauge(g) => g,
            _ => unreachable!(),
        }
    }

    /// Get-or-create a histogram for `(name, labels)`.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        match self.get_or_create(name, labels, Kind::Histogram) {
            Metric::Histogram(h) => h,
            _ => unreachable!(),
        }
    }

    /// A point-in-time snapshot of every registered metric, in render
    /// order (family name, then label key). This is the enumeration
    /// surface the time-series recorder feeds on.
    pub fn snapshot(&self) -> Vec<MetricSnapshot> {
        let families = self.families.lock().unwrap();
        let mut out = Vec::new();
        for (name, family) in families.iter() {
            for (labels, metric) in family.entries.iter() {
                let value = match metric {
                    Metric::Counter(c) => ValueSnapshot::Counter(c.get()),
                    Metric::Gauge(g) => ValueSnapshot::Gauge(g.get()),
                    Metric::Histogram(h) => ValueSnapshot::Histogram {
                        count: h.count(),
                        sum: h.sum(),
                    },
                };
                out.push(MetricSnapshot {
                    name: name.clone(),
                    labels: labels.clone(),
                    value,
                });
            }
        }
        out
    }

    /// Renders the Prometheus text exposition format: a `# TYPE` line
    /// per family, one sample line per metric, histograms expanded
    /// into cumulative `_bucket{le=...}` lines (up to the highest
    /// non-empty bucket, then `+Inf`) plus `_sum` and `_count`.
    pub fn render(&self) -> String {
        let families = self.families.lock().unwrap();
        let mut out = String::new();
        for (name, family) in families.iter() {
            out.push_str("# TYPE ");
            out.push_str(name);
            out.push(' ');
            out.push_str(family.kind.as_str());
            out.push('\n');
            for (labels, metric) in family.entries.iter() {
                match metric {
                    Metric::Counter(c) => {
                        sample_line(&mut out, name, "", labels, None, &c.get().to_string());
                    }
                    Metric::Gauge(g) => {
                        sample_line(&mut out, name, "", labels, None, &format!("{}", g.get()));
                    }
                    Metric::Histogram(h) => {
                        let buckets = h.bucket_counts();
                        let last = buckets.iter().rposition(|&c| c != 0);
                        let mut cumulative = 0u64;
                        if let Some(last) = last {
                            for (i, &count) in buckets.iter().enumerate().take(last + 1) {
                                cumulative += count;
                                // Bucket i upper bound is 2^(i+1); the
                                // overflow bucket folds into +Inf below.
                                if i >= BUCKETS - 1 {
                                    break;
                                }
                                let le = (1u128 << (i + 1)).to_string();
                                sample_line(
                                    &mut out,
                                    name,
                                    "_bucket",
                                    labels,
                                    Some(&le),
                                    &cumulative.to_string(),
                                );
                            }
                        }
                        let count = h.count();
                        sample_line(
                            &mut out,
                            name,
                            "_bucket",
                            labels,
                            Some("+Inf"),
                            &count.to_string(),
                        );
                        sample_line(&mut out, name, "_sum", labels, None, &h.sum().to_string());
                        sample_line(&mut out, name, "_count", labels, None, &count.to_string());
                    }
                }
            }
        }
        out
    }
}

fn sample_line(
    out: &mut String,
    name: &str,
    suffix: &str,
    labels: &str,
    le: Option<&str>,
    value: &str,
) {
    out.push_str(name);
    out.push_str(suffix);
    let le_part = le.map(|le| format!("le=\"{le}\""));
    match (labels.is_empty(), le_part) {
        (true, None) => {}
        (true, Some(le)) => {
            out.push('{');
            out.push_str(&le);
            out.push('}');
        }
        (false, None) => {
            out.push('{');
            out.push_str(labels);
            out.push('}');
        }
        (false, Some(le)) => {
            out.push('{');
            out.push_str(labels);
            out.push(',');
            out.push_str(&le);
            out.push('}');
        }
    }
    out.push(' ');
    out.push_str(value);
    out.push('\n');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_share_cells_by_name_and_labels() {
        let reg = Registry::new();
        let a = reg.counter("srj_requests_total", &[("dataset", "7")]);
        let b = reg.counter("srj_requests_total", &[("dataset", "7")]);
        let other = reg.counter("srj_requests_total", &[("dataset", "8")]);
        a.inc();
        b.add(2);
        other.inc();
        assert_eq!(a.get(), 3);
        assert_eq!(other.get(), 1);
    }

    #[test]
    fn gauge_roundtrips_f64() {
        let reg = Registry::new();
        let g = reg.gauge("srj_mu_total", &[]);
        g.set(1234.5);
        assert_eq!(g.get(), 1234.5);
    }

    #[test]
    fn histogram_quantiles_match_engine_semantics() {
        let h = Histogram::new();
        for _ in 0..99 {
            h.observe(1_000); // ~1µs
        }
        h.observe(1_000_000); // ~1ms
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 99 * 1_000 + 1_000_000);
        // p50 sits in the microsecond bucket (within 2x).
        assert!(h.quantile(0.50) < 4_000, "p50 = {}", h.quantile(0.50));
        // p99 is the max-ranked observation here: the millisecond bucket.
        assert!(h.quantile(0.99) > 50 * h.quantile(0.50));
        // empty histogram answers zero
        assert_eq!(Histogram::new().quantile(0.99), 0);
    }

    #[test]
    fn zero_observation_lands_in_bucket_zero() {
        let h = Histogram::new();
        h.observe(0);
        h.observe(1);
        assert_eq!(h.bucket_counts()[0], 2);
    }

    #[test]
    fn render_emits_prometheus_text() {
        let reg = Registry::new();
        reg.counter("srj_requests_total", &[("dataset", "7")])
            .add(5);
        reg.gauge("srj_rejection_rate", &[]).set(1.5);
        let h = reg.histogram("srj_request_latency_ns", &[("dataset", "7")]);
        h.observe(3); // bucket 1: [2,4)
        h.observe(1000);
        let text = reg.render();
        assert!(text.contains("# TYPE srj_requests_total counter"), "{text}");
        assert!(
            text.contains("srj_requests_total{dataset=\"7\"} 5"),
            "{text}"
        );
        assert!(text.contains("# TYPE srj_rejection_rate gauge"), "{text}");
        assert!(text.contains("srj_rejection_rate 1.5"), "{text}");
        assert!(
            text.contains("# TYPE srj_request_latency_ns histogram"),
            "{text}"
        );
        assert!(
            text.contains("srj_request_latency_ns_bucket{dataset=\"7\",le=\"4\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("srj_request_latency_ns_bucket{dataset=\"7\",le=\"+Inf\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("srj_request_latency_ns_sum{dataset=\"7\"} 1003"),
            "{text}"
        );
        assert!(
            text.contains("srj_request_latency_ns_count{dataset=\"7\"} 2"),
            "{text}"
        );
    }

    #[test]
    fn bucket_lines_are_cumulative() {
        let reg = Registry::new();
        let h = reg.histogram("h", &[]);
        h.observe(2); // bucket 1, le 4
        h.observe(3); // bucket 1
        h.observe(5); // bucket 2, le 8
        let text = reg.render();
        assert!(text.contains("h_bucket{le=\"4\"} 2"), "{text}");
        assert!(text.contains("h_bucket{le=\"8\"} 3"), "{text}");
        assert!(text.contains("h_bucket{le=\"+Inf\"} 3"), "{text}");
    }

    #[test]
    #[should_panic(expected = "registered as")]
    fn kind_conflict_panics() {
        let reg = Registry::new();
        reg.counter("srj_x", &[]);
        reg.gauge("srj_x", &[]);
    }

    #[test]
    #[should_panic(expected = "registered as")]
    fn histogram_counter_conflict_panics() {
        let reg = Registry::new();
        reg.histogram("srj_y", &[("dataset", "1")]);
        reg.counter("srj_y", &[("dataset", "1")]);
    }

    #[test]
    fn label_order_is_canonicalized() {
        // The same label set in a different declaration order must
        // resolve to the same series — otherwise two call sites would
        // silently double-register and split their counts.
        let reg = Registry::new();
        let a = reg.counter("srj_m", &[("dataset", "7"), ("rung", "repair")]);
        let b = reg.counter("srj_m", &[("rung", "repair"), ("dataset", "7")]);
        a.add(2);
        b.add(3);
        assert_eq!(a.get(), 5);
        assert_eq!(b.get(), 5);
        // Exactly one rendered sample line carries the merged total.
        let text = reg.render();
        assert!(
            text.contains("srj_m{dataset=\"7\",rung=\"repair\"} 5"),
            "{text}"
        );
        assert_eq!(text.matches("srj_m{").count(), 1, "{text}");
        // Different label *values* stay distinct series.
        let c = reg.counter("srj_m", &[("rung", "replan"), ("dataset", "7")]);
        c.inc();
        assert_eq!(a.get(), 5);
        assert_eq!(c.get(), 1);
    }

    #[test]
    fn bucket_boundaries_at_exact_powers_of_two() {
        // Bucket i spans [2^i, 2^(i+1)): an observation of exactly 2^k
        // is the *lower* edge of bucket k, and 2^k - 1 belongs to
        // bucket k-1.
        for k in 1..=62usize {
            let v = 1u64 << k;
            assert_eq!(bucket_index(v), k, "2^{k}");
            assert_eq!(bucket_index(v - 1), k - 1, "2^{k} - 1");
            assert_eq!(bucket_index(v + 1), k, "2^{k} + 1");
        }
        // Degenerate edges: 0 and 1 share bucket 0; the top bucket
        // clamps.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_index(1u64 << 63), BUCKETS - 1);
        // And the cumulative render reflects the same edges: exactly
        // the observations < 2^k fall under le="2^k".
        let h = Histogram::new();
        h.observe(4095); // bucket 11, le 4096
        h.observe(4096); // bucket 12, le 8192
        h.observe(4097); // bucket 12
        let buckets = h.bucket_counts();
        assert_eq!(buckets[11], 1);
        assert_eq!(buckets[12], 2);
    }

    #[test]
    fn snapshot_enumerates_every_metric() {
        let reg = Registry::new();
        reg.counter("srj_a_total", &[("dataset", "1")]).add(4);
        reg.gauge("srj_b", &[]).set(2.5);
        let h = reg.histogram("srj_c_ns", &[("dataset", "1")]);
        h.observe(10);
        h.observe(30);
        let snap = reg.snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(snap[0].name, "srj_a_total");
        assert_eq!(snap[0].labels, "dataset=\"1\"");
        assert_eq!(snap[0].value, ValueSnapshot::Counter(4));
        assert_eq!(snap[1].value, ValueSnapshot::Gauge(2.5));
        assert_eq!(
            snap[2].value,
            ValueSnapshot::Histogram { count: 2, sum: 40 }
        );
    }
}
