//! Sampled span tracing over per-thread lock-free ring buffers.
//!
//! A request that wins the sampling coin-flip ([`try_start_trace`])
//! gets a nonzero process-unique trace id, which travels with the
//! request (explicitly, and via a thread-local "current trace" set by
//! [`set_current`] around each processing stage). Instrumented code
//! calls [`event`]`("span", "what")`; if a trace is current, a
//! `(trace_id, span, event, ns)` record lands in the calling thread's
//! ring.
//!
//! Storage is a fixed global pool of rings of seqlock-protected slots:
//! writers claim a slot with one `fetch_add` and publish with a
//! sequence-number protocol, readers ([`spans_for`]) validate the
//! sequence number around the field reads and drop torn records. No
//! locks anywhere on the write path; old records are overwritten
//! ring-buffer style.
//!
//! When tracing is disabled — `trace_sample_rate` 0, the default —
//! the cost of an [`event`] call site is one relaxed load and one
//! branch, so instrumentation can live inside the engine's draw loop.
//!
//! Span/event names are `&'static str` interned into a global table;
//! records store the two small indices packed into one `u64`, which
//! keeps slot publication tear-free without storing fat pointers.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::RwLock;

use crate::clock;

/// Rings in the global pool; threads are assigned rings round-robin.
const POOL: usize = 16;
/// Slots per ring; the pool retains the last `POOL × SLOTS` records.
const SLOTS: usize = 512;

/// `f64` bits of the sample rate; bits 0 ⇔ rate 0.0 ⇔ disabled.
static SAMPLE_RATE_BITS: AtomicU64 = AtomicU64::new(0);
/// Nonzero ⇔ record spans for every request with a current trace id,
/// regardless of the sampling rate (the slow-log's always-on rings).
static ALWAYS_RECORD: AtomicU64 = AtomicU64::new(0);
/// Trace-id allocator (ids only; see `ARRIVALS` for sampling).
static NEXT_TRACE: AtomicU64 = AtomicU64::new(1);
/// Sampled-request arrival counter — drives deterministic 1-in-N
/// sampling. Separate from the id allocator so forced (slow-log) id
/// allocation cannot phase-shift the sampling pattern.
static ARRIVALS: AtomicU64 = AtomicU64::new(1);
/// Round-robin ring assignment for threads.
static NEXT_RING: AtomicUsize = AtomicUsize::new(0);

/// Interned span/event names. Insertion takes the write lock (rare —
/// a handful of static names per process); lookup takes the read lock
/// only on the traced (sampled) path.
static NAMES: RwLock<Vec<&'static str>> = RwLock::new(Vec::new());

fn intern(s: &'static str) -> u32 {
    let find = |t: &[&'static str]| {
        t.iter()
            .position(|&n| std::ptr::eq(n.as_ptr(), s.as_ptr()) && n.len() == s.len())
    };
    if let Some(i) = find(&NAMES.read().unwrap()) {
        return i as u32 + 1;
    }
    let mut t = NAMES.write().unwrap();
    if let Some(i) = find(&t) {
        return i as u32 + 1;
    }
    t.push(s);
    t.len() as u32 // index + 1; 0 means "unknown"
}

fn resolve(i: u32) -> &'static str {
    if i == 0 {
        return "?";
    }
    NAMES
        .read()
        .unwrap()
        .get(i as usize - 1)
        .copied()
        .unwrap_or("?")
}

struct Slot {
    /// Seqlock word: 0 = never written, odd = write in progress,
    /// even = record `seq/2 − 1` published.
    seq: AtomicU64,
    trace: AtomicU64,
    /// `span_name_idx << 32 | event_name_idx`.
    ids: AtomicU64,
    ns: AtomicU64,
}

struct Ring {
    head: AtomicU64,
    slots: [Slot; SLOTS],
}

impl Ring {
    const fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const SLOT: Slot = Slot {
            seq: AtomicU64::new(0),
            trace: AtomicU64::new(0),
            ids: AtomicU64::new(0),
            ns: AtomicU64::new(0),
        };
        Ring {
            head: AtomicU64::new(0),
            slots: [SLOT; SLOTS],
        }
    }

    fn record(&self, trace_id: u64, span: &'static str, event: &'static str) {
        let ids = (u64::from(intern(span)) << 32) | u64::from(intern(event));
        let ticket = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket as usize) % SLOTS];
        // Seqlock publish: odd marks the write in progress, the final
        // even value is unique to this ticket so a reader that raced a
        // lapping writer sees a seq mismatch and drops the record.
        slot.seq.store(ticket * 2 + 1, Ordering::Release);
        slot.trace.store(trace_id, Ordering::Relaxed);
        slot.ids.store(ids, Ordering::Relaxed);
        slot.ns.store(clock::now_ns(), Ordering::Relaxed);
        slot.seq.store(ticket * 2 + 2, Ordering::Release);
    }
}

#[allow(clippy::declare_interior_mutable_const)]
const RING: Ring = Ring::new();
static RINGS: [Ring; POOL] = [RING; POOL];

thread_local! {
    /// The trace id of the request this thread is currently serving
    /// (0 = none).
    static CURRENT: Cell<u64> = const { Cell::new(0) };
    /// This thread's ring in the global pool (lazily assigned).
    static MY_RING: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// Sets the global trace sampling rate in `[0.0, 1.0]`. `0.0`
/// (default) disables tracing entirely; `1.0` traces every request.
pub fn set_sample_rate(rate: f64) {
    let rate = if rate.is_finite() {
        rate.clamp(0.0, 1.0)
    } else {
        0.0
    };
    SAMPLE_RATE_BITS.store(rate.to_bits(), Ordering::Relaxed);
}

/// The current global trace sampling rate.
pub fn sample_rate() -> f64 {
    f64::from_bits(SAMPLE_RATE_BITS.load(Ordering::Relaxed))
}

/// Whether tracing is enabled at all (one relaxed load per switch).
#[inline]
pub fn enabled() -> bool {
    SAMPLE_RATE_BITS.load(Ordering::Relaxed) != 0 || ALWAYS_RECORD.load(Ordering::Relaxed) != 0
}

/// Turns always-on recording on or off. With it on, [`event`] records
/// for any thread with a current trace id even when the sampling rate
/// is 0 — the slow-log sets a forced id per request so every request
/// leaves spans in the rings, and only the ones that turn out slow are
/// retained anywhere beyond ring wraparound.
pub fn set_always_record(on: bool) {
    ALWAYS_RECORD.store(u64::from(on), Ordering::Relaxed);
}

/// Whether always-on recording is active.
pub fn always_record() -> bool {
    ALWAYS_RECORD.load(Ordering::Relaxed) != 0
}

/// Allocates a process-unique nonzero trace id unconditionally — the
/// slow-log path tags every request so its spans are addressable if
/// the request turns out slow. Does not consume a sampling slot.
pub fn start_trace_forced() -> u64 {
    NEXT_TRACE.fetch_add(1, Ordering::Relaxed)
}

/// Rolls the sampling dice for a new request: a nonzero
/// process-unique trace id if the request should be traced, else 0.
/// Sampling is deterministic 1-in-`round(1/rate)` by arrival order.
pub fn try_start_trace() -> u64 {
    let rate = sample_rate();
    if rate <= 0.0 {
        return 0;
    }
    let n = ARRIVALS.fetch_add(1, Ordering::Relaxed);
    if rate >= 1.0 {
        return NEXT_TRACE.fetch_add(1, Ordering::Relaxed);
    }
    let period = (1.0 / rate).round().max(1.0) as u64;
    if n.is_multiple_of(period) {
        NEXT_TRACE.fetch_add(1, Ordering::Relaxed)
    } else {
        0
    }
}

/// Marks `trace_id` as the thread's current trace for the guard's
/// lifetime (0 clears it). Nests: dropping restores the previous id.
#[must_use = "the trace is only current while the guard lives"]
pub fn set_current(trace_id: u64) -> TraceGuard {
    let prev = CURRENT.with(|c| c.replace(trace_id));
    TraceGuard { prev }
}

/// Restores the previously current trace id on drop (see
/// [`set_current`]).
pub struct TraceGuard {
    prev: u64,
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev));
    }
}

fn my_ring() -> &'static Ring {
    let idx = MY_RING.with(|r| {
        let mut idx = r.get();
        if idx == usize::MAX {
            idx = NEXT_RING.fetch_add(1, Ordering::Relaxed) % POOL;
            r.set(idx);
        }
        idx
    });
    &RINGS[idx]
}

/// Records `(current_trace, span, event, now)` if tracing is enabled
/// and a trace is current on this thread; otherwise one relaxed load
/// and out. This is the hook instrumented code calls.
#[inline]
pub fn event(span: &'static str, what: &'static str) {
    if !enabled() {
        return;
    }
    let id = CURRENT.with(|c| c.get());
    if id != 0 {
        my_ring().record(id, span, what);
    }
}

/// Records an event for an explicit trace id (0 is a no-op) — for
/// stages that hold the id in hand rather than on the thread.
pub fn event_for(trace_id: u64, span: &'static str, what: &'static str) {
    if trace_id != 0 {
        my_ring().record(trace_id, span, what);
    }
}

/// One published trace record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// The trace this record belongs to.
    pub trace_id: u64,
    /// Instrumented stage (e.g. `draw_loop`).
    pub span: &'static str,
    /// What happened in the stage (e.g. `begin`).
    pub event: &'static str,
    /// [`clock::now_ns`] at record time.
    pub ns: u64,
}

/// Collects every still-buffered record for `trace_id`, oldest first.
/// Records overwritten by ring wraparound (or torn by a concurrent
/// writer) are silently absent.
pub fn spans_for(trace_id: u64) -> Vec<SpanRecord> {
    let mut out = Vec::new();
    if trace_id == 0 {
        return out;
    }
    for ring in &RINGS {
        for slot in &ring.slots {
            let seq1 = slot.seq.load(Ordering::Acquire);
            if seq1 == 0 || seq1 % 2 == 1 {
                continue;
            }
            let trace = slot.trace.load(Ordering::Relaxed);
            let ids = slot.ids.load(Ordering::Relaxed);
            let ns = slot.ns.load(Ordering::Relaxed);
            if slot.seq.load(Ordering::Acquire) != seq1 || trace != trace_id {
                continue;
            }
            out.push(SpanRecord {
                trace_id,
                span: resolve((ids >> 32) as u32),
                event: resolve(ids as u32),
                ns,
            });
        }
    }
    out.sort_by_key(|r| r.ns);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // The sample-rate switch and the trace-id allocator are process
    // globals, so these tests serialize on one lock, only assert on
    // their own trace ids, and restore the disabled default before
    // returning.
    static TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_tracing_records_nothing() {
        let _serial = serial();
        set_sample_rate(0.0);
        assert!(!enabled());
        assert_eq!(try_start_trace(), 0);
        let _guard = set_current(u64::MAX); // even with a current id...
        event("span", "event"); // ...disabled means no record
        assert!(spans_for(u64::MAX).is_empty());
    }

    #[test]
    fn traced_events_come_back_in_time_order() {
        let _serial = serial();
        set_sample_rate(1.0);
        let id = try_start_trace();
        assert_ne!(id, 0);
        {
            let _guard = set_current(id);
            event("frame_decode", "begin");
            event("draw_loop", "begin");
            event("draw_loop", "end");
        }
        event("draw_loop", "after-guard"); // not current any more
        let spans = spans_for(id);
        set_sample_rate(0.0);
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].span, "frame_decode");
        assert_eq!(spans[1].event, "begin");
        assert_eq!(spans[2].event, "end");
        assert!(spans.windows(2).all(|w| w[0].ns <= w[1].ns));
    }

    #[test]
    fn event_for_records_without_thread_current() {
        let _serial = serial();
        set_sample_rate(1.0);
        let id = try_start_trace();
        event_for(id, "reader", "frame_decode");
        event_for(0, "reader", "dropped"); // id 0 is a no-op
        let spans = spans_for(id);
        set_sample_rate(0.0);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].event, "frame_decode");
    }

    #[test]
    fn guards_nest_and_restore() {
        let _serial = serial();
        set_sample_rate(1.0);
        let a = try_start_trace();
        let b = try_start_trace();
        let outer = set_current(a);
        {
            let _inner = set_current(b);
            event("inner", "x");
        }
        event("outer", "y");
        drop(outer);
        let spans_a = spans_for(a);
        let spans_b = spans_for(b);
        set_sample_rate(0.0);
        assert_eq!(spans_a.len(), 1);
        assert_eq!(spans_a[0].span, "outer");
        assert_eq!(spans_b.len(), 1);
        assert_eq!(spans_b[0].span, "inner");
    }

    #[test]
    fn fractional_rate_samples_a_subset() {
        let _serial = serial();
        set_sample_rate(0.25);
        let ids: Vec<u64> = (0..100).map(|_| try_start_trace()).collect();
        set_sample_rate(0.0);
        let sampled = ids.iter().filter(|&&id| id != 0).count();
        // Deterministic 1-in-4 by arrival order: 25 ± 1 of 100 (the
        // allocator is shared with other tests, so the phase varies).
        assert!((24..=26).contains(&sampled), "sampled = {sampled}");
    }

    #[test]
    fn ring_wraparound_drops_old_records_not_correctness() {
        let _serial = serial();
        set_sample_rate(1.0);
        let id = try_start_trace();
        {
            let _guard = set_current(id);
            // Overfill this thread's ring several times over.
            for _ in 0..(SLOTS * 3) {
                event("wrap", "tick");
            }
        }
        let spans = spans_for(id);
        set_sample_rate(0.0);
        assert!(!spans.is_empty());
        assert!(spans.len() <= SLOTS);
        assert!(spans.iter().all(|s| s.span == "wrap" && s.event == "tick"));
    }
}
