//! `R`-sharded indexes: partition `R`, build per-shard indexes in
//! parallel, serve through a top-level alias over per-shard `Σµ`.
//!
//! Weights are per-`r` in every algorithm (`µ(r)` depends only on `r`
//! and the immutable `S`-side structures), so partitioning `R` into `k`
//! contiguous shards decomposes the total weight exactly:
//! `Σµ = Σ_i Σµ_i`. A [`ShardedIndex`] exploits that twice:
//!
//! * **Build**: the `k` shard indexes are independent, so they build
//!   concurrently on [`srj_core::SampleConfig::build_threads`] threads
//!   (each shard's own inner build loop stays serial to avoid
//!   oversubscription).
//! * **Serve**: a draw picks a shard `∝ Σµ_i` from a top-level
//!   [`AliasTable`], then runs **one** iteration of that shard's
//!   sampler. Per iteration the candidate pair is `(r, s)` with
//!   probability `(Σµ_i/Σµ) · (µ(r)/Σµ_i) · …  = µ(r)/Σµ` — exactly the
//!   unsharded per-iteration distribution, so accepted samples stay
//!   uniform over `J` (Theorem 3's argument is shard-oblivious).
//!
//! The one subtlety is rejection: the shard must be **re-picked on
//! every iteration** (this is why [`SamplerIndex::try_draw`] exists).
//! Looping to acceptance inside one shard would instead emit pairs with
//! probability `(Σµ_i/Σµ) · (1/|J_i|)`, biasing toward shards with
//! looser bounds.
//!
//! A `ShardedIndex<I>` implements [`SamplerIndex`] itself, so the
//! ordinary [`srj_core::Cursor`] drives it: any number of threads get
//! their own cursor over one shared sharded index with zero
//! synchronisation — `k` serving threads over `k` shards contend on
//! nothing.

use std::sync::Arc;
use std::time::Instant;

use rand::Rng;
use srj_alias::AliasTable;
use srj_core::parallel::par_map;
use srj_core::{BufferStats, JoinPair, PhaseReport, SampleConfig, SampleError, SamplerIndex};
use srj_geom::Point;

/// Balanced contiguous partition of `R` into `k` shards — the same
/// chunking rule the parallel build uses
/// ([`srj_core::parallel::chunk_bounds`]), so shard layout and build
/// chunking can never drift apart.
pub fn shard_bounds(n: usize, k: usize) -> Vec<(usize, usize)> {
    srj_core::parallel::chunk_bounds(n, k)
}

/// An `R`-sharded wrapper around any [`SamplerIndex`]: `k` per-shard
/// indexes plus a top-level alias over per-shard total weights. See the
/// module docs for the sampling argument.
pub struct ShardedIndex<I: SamplerIndex> {
    shards: Vec<Arc<I>>,
    /// Global `R` offset of each shard (shard-local `r` ids are
    /// re-based by this on every accepted draw).
    offsets: Vec<u32>,
    /// Top-level alias over `Σµ_i`; `None` when every shard is empty.
    alias: Option<AliasTable>,
    rejection_limit: u64,
    build_report: PhaseReport,
}

impl<I: SamplerIndex> ShardedIndex<I> {
    /// Partitions `r` into (up to) `num_shards` contiguous shards and
    /// builds every shard index with `build_shard`, running the shard
    /// builds on [`SampleConfig::build_threads`] threads.
    ///
    /// `build_shard` receives one shard's slice of `R` and must build
    /// an index over it against the full `S` with `build_threads = 1`
    /// (the parallelism budget is spent across shards here; a nested
    /// parallel build would oversubscribe the cores).
    ///
    /// The aggregated [`PhaseReport`] collapses the per-shard phase
    /// decomposition: `upper_bounding` holds the **wall-clock** of the
    /// whole parallel shard-build and `upper_bounding_cpu` the summed
    /// per-shard build totals, so `cpu / wall` is the achieved build
    /// speedup.
    pub fn build<F>(r: &[Point], config: &SampleConfig, num_shards: usize, build_shard: F) -> Self
    where
        F: Fn(&[Point]) -> I + Sync,
    {
        Self::build_with_base(r, config, num_shards, PhaseReport::default(), build_shard)
    }

    /// Like [`ShardedIndex::build`], but folds `base` — the phase
    /// report of work the caller did up front, e.g. building the
    /// `Arc`-shared `S`-side structures every shard reuses — into the
    /// aggregated report, so the sharded engine's build accounting
    /// still covers the whole build even though the shared part
    /// happened outside this call.
    pub fn build_with_base<F>(
        r: &[Point],
        config: &SampleConfig,
        num_shards: usize,
        base: PhaseReport,
        build_shard: F,
    ) -> Self
    where
        F: Fn(&[Point]) -> I + Sync,
    {
        let bounds = shard_bounds(r.len(), num_shards);
        let t0 = Instant::now();
        let (shards, par) = par_map(&bounds, config.build_threads, |_, &(lo, hi)| {
            Arc::new(build_shard(&r[lo..hi]))
        });
        let wall = t0.elapsed();

        let weights: Vec<f64> = shards.iter().map(|s| s.total_weight()).collect();
        let alias = AliasTable::new(&weights);
        let cpu: std::time::Duration = shards
            .iter()
            .map(|s| {
                let rep = s.index_build_report();
                rep.preprocessing + rep.grid_mapping + rep.upper_bounding_cpu
            })
            .sum();
        // `par.cpu` only counts time inside the map; per-shard reports
        // are finer-grained, so prefer them but never report less CPU
        // than the map actually measured.
        let build_report = PhaseReport {
            preprocessing: base.preprocessing,
            grid_mapping: base.grid_mapping,
            upper_bounding: base.upper_bounding + wall,
            upper_bounding_cpu: base.upper_bounding_cpu + cpu.max(par.cpu),
            ..PhaseReport::default()
        };

        ShardedIndex {
            offsets: bounds.iter().map(|&(lo, _)| lo as u32).collect(),
            shards,
            alias,
            rejection_limit: config.max_consecutive_rejections,
            build_report,
        }
    }

    /// Number of shards (≥ 1; a build over empty `R` keeps one empty
    /// shard so the index still answers `EmptyJoin`).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// One shard's index (for per-shard inspection or pinned serving).
    pub fn shard(&self, i: usize) -> &Arc<I> {
        &self.shards[i]
    }

    /// Global `R` offset of shard `i`.
    pub fn shard_offset(&self, i: usize) -> u32 {
        self.offsets[i]
    }

    /// Sum of the upper bounds `Σµ = Σ_i Σµ_i` across all shards.
    pub fn mu_total(&self) -> f64 {
        self.alias.as_ref().map_or(0.0, AliasTable::total_weight)
    }

    /// Rebuilds every shard through `f` — preserving the shard layout
    /// and re-deriving the top-level alias — or returns `None` if `f`
    /// returns `None` for any shard. Used by the per-cell repair path:
    /// each shard re-tightens the same cells against the one shared
    /// `S`-side, so `f` is cheap (`O(n_i log m)` per shard) and the
    /// offsets never change.
    pub fn try_map_shards(&self, f: impl Fn(&I) -> Option<I>) -> Option<Self> {
        let shards: Option<Vec<Arc<I>>> = self.shards.iter().map(|s| f(s).map(Arc::new)).collect();
        let shards = shards?;
        let weights: Vec<f64> = shards.iter().map(|s| s.total_weight()).collect();
        Some(ShardedIndex {
            offsets: self.offsets.clone(),
            alias: AliasTable::new(&weights),
            rejection_limit: self.rejection_limit,
            build_report: self.build_report,
            shards,
        })
    }
}

impl<I: SamplerIndex> SamplerIndex for ShardedIndex<I> {
    type Scratch = I::Scratch;

    fn algorithm_name(&self) -> &'static str {
        // All shards run the same algorithm; shards is never empty.
        self.shards[0].algorithm_name()
    }

    /// One iteration: shard `∝ Σµ_i`, then one iteration of that
    /// shard's sampler, with the accepted `r` re-based to its global
    /// index.
    fn try_draw<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        scratch: &mut Self::Scratch,
        stats: &mut PhaseReport,
    ) -> Result<Option<JoinPair>, SampleError> {
        let alias = self.alias.as_ref().ok_or(SampleError::EmptyJoin)?;
        let si = alias.sample(rng);
        // The shard's own try_draw does the iteration/sample accounting.
        Ok(self.shards[si]
            .try_draw(rng, scratch, stats)?
            .map(|p| JoinPair::new(p.r + self.offsets[si], p.s)))
    }

    fn rejection_limit(&self) -> u64 {
        self.rejection_limit
    }

    fn total_weight(&self) -> f64 {
        self.mu_total()
    }

    fn cell_count(&self) -> usize {
        // All shards draw from the one shared S-side, so their cell
        // slots coincide; rejections from any shard feed one counter
        // set.
        self.shards[0].cell_count()
    }

    fn drain_cell_rejections(scratch: &mut Self::Scratch, out: &mut Vec<u32>) {
        I::drain_cell_rejections(scratch, out);
    }

    fn set_buffers(scratch: &mut Self::Scratch, enabled: bool) {
        // One shared scratch serves every shard, and all shards draw
        // from the one shared S-side, so the buffers are shard-blind.
        I::set_buffers(scratch, enabled);
    }

    fn warm_buffers(scratch: &mut Self::Scratch, slots: &[u32]) {
        I::warm_buffers(scratch, slots);
    }

    fn seed_buffers(scratch: &mut Self::Scratch, seed: u64) {
        I::seed_buffers(scratch, seed);
    }

    fn drain_buffer_stats(scratch: &mut Self::Scratch) -> BufferStats {
        I::drain_buffer_stats(scratch)
    }

    fn index_build_report(&self) -> PhaseReport {
        self.build_report
    }

    fn index_memory_bytes(&self) -> usize {
        // Shards built over Arc-shared S-side structures (one kd-tree /
        // grid / BBST set for all of them) report the same non-zero
        // shared-memory token; count that allocation once, not per
        // shard.
        let mut seen_tokens: Vec<usize> = Vec::new();
        self.shards
            .iter()
            .map(|s| {
                let token = s.shared_memory_token();
                if token != 0 && seen_tokens.contains(&token) {
                    s.index_memory_bytes() - s.shared_memory_bytes()
                } else {
                    if token != 0 {
                        seen_tokens.push(token);
                    }
                    s.index_memory_bytes()
                }
            })
            .sum()
    }

    fn shared_memory_bytes(&self) -> usize {
        // A sharded index can itself be wrapped; its dedupable part is
        // the first shard's shared S-side (all shards agree when built
        // shared).
        self.shards[0].shared_memory_bytes()
    }

    fn shared_memory_token(&self) -> usize {
        self.shards[0].shared_memory_token()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use srj_core::{BbstIndex, Cursor, JoinSampler, KdsIndex, KdsRejectionIndex};
    use srj_geom::Rect;

    fn pseudo_points(n: usize, seed: u64, extent: f64) -> Vec<Point> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| Point::new(next() * extent, next() * extent))
            .collect()
    }

    #[test]
    fn bounds_are_balanced_and_exhaustive() {
        for (n, k) in [(10, 3), (9, 3), (1, 4), (0, 2), (100, 1), (7, 7)] {
            let b = shard_bounds(n, k);
            assert_eq!(b.first().unwrap().0, 0);
            assert_eq!(b.last().unwrap().1, n);
            for w in b.windows(2) {
                assert_eq!(w[0].1, w[1].0, "gap in bounds for n={n} k={k}");
            }
            let sizes: Vec<usize> = b.iter().map(|(lo, hi)| hi - lo).collect();
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(max - min <= 1, "unbalanced: {sizes:?}");
        }
    }

    #[test]
    fn sharded_total_weight_decomposes_exactly() {
        let r = pseudo_points(200, 1, 60.0);
        let s = pseudo_points(300, 2, 60.0);
        let cfg = SampleConfig::new(5.0);
        let whole = BbstIndex::build(&r, &s, &cfg);
        for k in [1, 2, 3, 5] {
            let sharded =
                ShardedIndex::build(&r, &cfg, k, |chunk| BbstIndex::build(chunk, &s, &cfg));
            assert_eq!(sharded.shard_count(), k);
            // Σµ is a per-r sum, so sharding must preserve it exactly up
            // to f64 summation order.
            let rel = (sharded.mu_total() - whole.mu_total()).abs() / whole.mu_total();
            assert!(
                rel < 1e-9,
                "k={k}: Σµ {} vs {}",
                sharded.mu_total(),
                whole.mu_total()
            );
        }
    }

    #[test]
    fn sharded_draws_are_genuine_and_globally_indexed() {
        let r = pseudo_points(150, 11, 50.0);
        let s = pseudo_points(250, 12, 50.0);
        let l = 5.0;
        let cfg = SampleConfig::new(l);
        let sharded = Arc::new(ShardedIndex::build(&r, &cfg, 4, |chunk| {
            KdsRejectionIndex::build(chunk, &s, &cfg)
        }));
        let mut cursor = Cursor::new(Arc::clone(&sharded));
        let mut rng = SmallRng::seed_from_u64(13);
        let pairs = cursor.sample(500, &mut rng).unwrap();
        for p in pairs {
            let w = Rect::window(r[p.r as usize], l);
            assert!(w.contains(s[p.s as usize]), "bad global remap: {p:?}");
        }
    }

    #[test]
    fn kds_shards_never_reject() {
        let r = pseudo_points(100, 21, 40.0);
        let s = pseudo_points(150, 22, 40.0);
        let cfg = SampleConfig::new(5.0);
        let sharded = Arc::new(ShardedIndex::build(&r, &cfg, 3, |chunk| {
            KdsIndex::build(chunk, &s, &cfg)
        }));
        let mut cursor = Cursor::new(sharded);
        let mut rng = SmallRng::seed_from_u64(3);
        cursor.sample(400, &mut rng).unwrap();
        let rep = cursor.report();
        assert_eq!(rep.iterations, rep.samples);
    }

    #[test]
    fn empty_r_yields_empty_join() {
        let s = pseudo_points(50, 31, 30.0);
        let cfg = SampleConfig::new(4.0);
        let sharded = Arc::new(ShardedIndex::build(&[], &cfg, 4, |chunk| {
            BbstIndex::build(chunk, &s, &cfg)
        }));
        assert_eq!(sharded.shard_count(), 1);
        let mut cursor = Cursor::new(sharded);
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(cursor.sample_one(&mut rng), Err(SampleError::EmptyJoin));
    }

    #[test]
    fn more_shards_than_points_is_clamped() {
        let r = pseudo_points(3, 41, 20.0);
        let s = pseudo_points(40, 42, 20.0);
        let cfg = SampleConfig::new(8.0);
        let sharded = ShardedIndex::build(&r, &cfg, 16, |chunk| BbstIndex::build(chunk, &s, &cfg));
        assert_eq!(sharded.shard_count(), 3);
    }

    #[test]
    fn shared_s_side_is_counted_once_in_memory() {
        let r = pseudo_points(300, 61, 60.0);
        let s = pseudo_points(2_000, 62, 60.0);
        let cfg = SampleConfig::new(5.0);
        let k = 4;

        // Baseline: every shard builds (and is charged for) its own
        // S-side structures.
        let duplicated =
            ShardedIndex::build(&r, &cfg, k, |chunk| BbstIndex::build(chunk, &s, &cfg));

        // Shared: one S-side, Arc-cloned into every shard.
        let s_side = srj_core::BbstIndex::build_s_structures(&s, &cfg);
        let shared = ShardedIndex::build(&r, &cfg, k, |chunk| {
            BbstIndex::build_shared(chunk, &cfg, &s_side)
        });

        // Identical serving behaviour...
        assert_eq!(shared.mu_total(), duplicated.mu_total());
        let mut a = Cursor::new(Arc::new(shared));
        let mut b = Cursor::new(Arc::new(duplicated));
        let mut rng_a = SmallRng::seed_from_u64(7);
        let mut rng_b = SmallRng::seed_from_u64(7);
        assert_eq!(
            a.sample(200, &mut rng_a).unwrap(),
            b.sample(200, &mut rng_b).unwrap()
        );

        // ...but the shared build stops paying k× for the S-side: its
        // footprint must drop by at least (k−1)/k of one S-side copy
        // (the per-shard R-side remains).
        let shared_bytes = a.index().index_memory_bytes();
        let duplicated_bytes = b.index().index_memory_bytes();
        let one_s_side = s_side.memory_bytes();
        assert!(
            shared_bytes + (k - 1) * one_s_side <= duplicated_bytes,
            "shared {shared_bytes} vs duplicated {duplicated_bytes} (S-side {one_s_side}, k {k})"
        );
    }

    #[test]
    fn build_report_has_wall_and_cpu() {
        let r = pseudo_points(200, 51, 40.0);
        let s = pseudo_points(200, 52, 40.0);
        let cfg = SampleConfig::new(5.0);
        let sharded = ShardedIndex::build(&r, &cfg, 2, |chunk| BbstIndex::build(chunk, &s, &cfg));
        let rep = sharded.index_build_report();
        assert!(rep.upper_bounding > std::time::Duration::ZERO);
        assert!(rep.upper_bounding_cpu > std::time::Duration::ZERO);
    }
}
