//! LRU cache of built engines keyed by `(dataset id, l, shards)`.
//!
//! Building an index is the expensive part of serving (the whole point
//! of the build/sample split); workloads that revisit the same window
//! half-extent on the same dataset should never rebuild. The cache
//! holds fully built [`Engine`]s — cloning an `Engine` clones an `Arc`,
//! so a cache hit is O(1) and the returned engine keeps working even if
//! it is later evicted.
//!
//! Keys: a caller-chosen `u64` dataset identifier, the dataset
//! **generation** (bump it when the data mutates — the `*_versioned`
//! entry points; a mutated dataset must never be answered by an engine
//! built over the old points, and [`EngineCache::invalidate_dataset`]
//! eagerly drops every entry of a dataset), the exact bit pattern of
//! `l`, the shard count, and the requested algorithm (`None` =
//! planner's choice). Two `l` values
//! that differ in the last mantissa bit are different keys — the cache
//! never answers with an index built for a different window size — an
//! unsharded engine is never answered for a sharded request (the shard
//! layout changes the serving topology even though the sample
//! distribution is identical), and a forced-algorithm request (the
//! network front-end exposes one) is never answered with a different
//! algorithm's engine.

use std::sync::Mutex;

use crate::{Algorithm, Engine};

/// Cache key: dataset id + dataset generation + exact `l` bits +
/// shard count + requested algorithm (`None` = "let the planner pick").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct CacheKey {
    dataset: u64,
    /// Dataset **generation**: bumped by the owner whenever the data
    /// mutates (an epoch-based store uses its rebuild epoch), so an
    /// engine built over stale points can never answer for the mutated
    /// dataset. `0` for the legacy unversioned entry points.
    generation: u64,
    l_bits: u64,
    shards: usize,
    /// `None` for planner-chosen (auto) engines. A forced-algorithm
    /// request must never be answered with an engine built for a
    /// different algorithm — the network front-end lets clients force
    /// any of the three — so the requested algorithm is part of the
    /// identity. Auto and forced entries are distinct even when the
    /// planner would have picked the same algorithm.
    algorithm: Option<Algorithm>,
}

struct CacheEntry {
    key: CacheKey,
    engine: Engine,
    last_used: u64,
}

struct CacheInner {
    entries: Vec<CacheEntry>,
    tick: u64,
    hits: u64,
    misses: u64,
}

/// A fixed-capacity least-recently-used cache of built [`Engine`]s.
///
/// Thread-safe: the map is guarded by one mutex, held only for O(cap)
/// bookkeeping — never while an engine builds. If two threads miss the
/// same key simultaneously both build, and the first insert wins (the
/// loser's engine is dropped and its clone still works); this favours
/// serving latency over strict build dedup.
pub struct EngineCache {
    capacity: usize,
    inner: Mutex<CacheInner>,
}

impl EngineCache {
    /// A cache retaining up to `capacity` built engines.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        EngineCache {
            capacity,
            inner: Mutex::new(CacheInner {
                entries: Vec::new(),
                tick: 0,
                hits: 0,
                misses: 0,
            }),
        }
    }

    /// The unsharded engine for `(dataset, l)` if cached, refreshing
    /// its recency. Shorthand for [`EngineCache::get_sharded`] with one
    /// shard.
    pub fn get(&self, dataset: u64, l: f64) -> Option<Engine> {
        self.get_sharded(dataset, l, 1)
    }

    /// The engine for `(dataset, l, shards)` if cached, refreshing its
    /// recency. Shorthand for [`EngineCache::get_keyed`] with no forced
    /// algorithm.
    pub fn get_sharded(&self, dataset: u64, l: f64, shards: usize) -> Option<Engine> {
        self.get_keyed(dataset, l, shards, None)
    }

    /// The engine for `(dataset, l, shards, algorithm)` if cached,
    /// refreshing its recency. `algorithm: None` addresses the
    /// planner-chosen (auto) entry for the workload. Shorthand for
    /// [`EngineCache::get_versioned`] at generation 0 (static
    /// datasets).
    pub fn get_keyed(
        &self,
        dataset: u64,
        l: f64,
        shards: usize,
        algorithm: Option<Algorithm>,
    ) -> Option<Engine> {
        self.get_versioned(dataset, 0, l, shards, algorithm)
    }

    /// The engine for `(dataset, generation, l, shards, algorithm)` if
    /// cached, refreshing its recency. The generation is the dataset's
    /// mutation epoch: callers serving a mutable dataset key every
    /// lookup with the store's current generation, so engines built
    /// over a previous generation's points are unreachable the moment
    /// the data changes (they age out via LRU or
    /// [`EngineCache::invalidate_dataset`]).
    pub fn get_versioned(
        &self,
        dataset: u64,
        generation: u64,
        l: f64,
        shards: usize,
        algorithm: Option<Algorithm>,
    ) -> Option<Engine> {
        let key = CacheKey {
            dataset,
            generation,
            l_bits: l.to_bits(),
            shards: shards.max(1),
            algorithm,
        };
        let mut inner = self.inner.lock().expect("engine cache poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(e) = inner.entries.iter_mut().find(|e| e.key == key) {
            e.last_used = tick;
            let engine = e.engine.clone();
            inner.hits += 1;
            Some(engine)
        } else {
            inner.misses += 1;
            None
        }
    }

    /// The unsharded engine for `(dataset, l)`, building it with
    /// `build` on a miss. Shorthand for
    /// [`EngineCache::get_or_build_sharded`] with one shard.
    pub fn get_or_build(&self, dataset: u64, l: f64, build: impl FnOnce() -> Engine) -> Engine {
        self.get_or_build_sharded(dataset, l, 1, build)
    }

    /// The engine for `(dataset, l, shards)`, building it with `build`
    /// on a miss and caching the result (evicting the
    /// least-recently-used entry when full). `build` must produce an
    /// engine with the requested shard count (e.g.
    /// [`Engine::build_sharded`] / [`Engine::auto_sharded`]).
    pub fn get_or_build_sharded(
        &self,
        dataset: u64,
        l: f64,
        shards: usize,
        build: impl FnOnce() -> Engine,
    ) -> Engine {
        self.get_or_build_keyed(dataset, l, shards, None, build)
    }

    /// The engine for `(dataset, l, shards, algorithm)`, building it
    /// with `build` on a miss and caching the result. `build` must
    /// produce an engine matching the key (shard count and, when
    /// `algorithm` is `Some`, that algorithm). Shorthand for
    /// [`EngineCache::get_or_build_versioned`] at generation 0.
    pub fn get_or_build_keyed(
        &self,
        dataset: u64,
        l: f64,
        shards: usize,
        algorithm: Option<Algorithm>,
        build: impl FnOnce() -> Engine,
    ) -> Engine {
        self.get_or_build_versioned(dataset, 0, l, shards, algorithm, build)
    }

    /// The engine for `(dataset, generation, l, shards, algorithm)`,
    /// building it with `build` on a miss and caching the result (see
    /// [`EngineCache::get_versioned`] for the generation semantics).
    pub fn get_or_build_versioned(
        &self,
        dataset: u64,
        generation: u64,
        l: f64,
        shards: usize,
        algorithm: Option<Algorithm>,
        build: impl FnOnce() -> Engine,
    ) -> Engine {
        if let Some(hit) = self.get_versioned(dataset, generation, l, shards, algorithm) {
            return hit;
        }
        // Build outside the lock: concurrent misses on *different* keys
        // must not serialise on one mutex for the whole build.
        let engine = build();
        let key = CacheKey {
            dataset,
            generation,
            l_bits: l.to_bits(),
            shards: shards.max(1),
            algorithm,
        };
        let mut inner = self.inner.lock().expect("engine cache poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(e) = inner.entries.iter_mut().find(|e| e.key == key) {
            // Another thread built the same key first; keep its engine
            // so later callers share one index.
            e.last_used = tick;
            return e.engine.clone();
        }
        if inner.entries.len() >= self.capacity {
            let lru = inner
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
                .expect("non-empty at capacity");
            inner.entries.swap_remove(lru);
        }
        inner.entries.push(CacheEntry {
            key,
            engine: engine.clone(),
            last_used: tick,
        });
        engine
    }

    /// Drops **every** cached engine for `dataset`, across all
    /// generations, window sizes, shard counts, and algorithms;
    /// returns how many entries were evicted.
    ///
    /// Generation-keyed lookups already make stale engines
    /// unreachable; this additionally releases their memory eagerly —
    /// call it when a dataset mutates (or is unregistered) instead of
    /// waiting for LRU pressure. Engines still held by callers keep
    /// serving (eviction never invalidates a clone).
    pub fn invalidate_dataset(&self, dataset: u64) -> usize {
        let mut inner = self.inner.lock().expect("engine cache poisoned");
        let before = inner.entries.len();
        inner.entries.retain(|e| e.key.dataset != dataset);
        before - inner.entries.len()
    }

    /// Number of engines currently cached.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("engine cache poisoned")
            .entries
            .len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of retained engines.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lookup hits so far (including the lookup half of
    /// [`EngineCache::get_or_build`]).
    pub fn hits(&self) -> u64 {
        self.inner.lock().expect("engine cache poisoned").hits
    }

    /// Lookup misses so far.
    pub fn misses(&self) -> u64 {
        self.inner.lock().expect("engine cache poisoned").misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Algorithm;
    use srj_core::SampleConfig;
    use srj_geom::Point;

    fn tiny_engine(l: f64) -> Engine {
        let pts: Vec<Point> = (0..20).map(|i| Point::new(i as f64, i as f64)).collect();
        Engine::build(&pts, &pts, &SampleConfig::new(l), Algorithm::Kds)
    }

    #[test]
    fn hit_reuses_built_engine() {
        let cache = EngineCache::new(4);
        let mut builds = 0;
        for _ in 0..3 {
            let _ = cache.get_or_build(1, 5.0, || {
                builds += 1;
                tiny_engine(5.0)
            });
        }
        assert_eq!(builds, 1);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let cache = EngineCache::new(4);
        let a = cache.get_or_build(1, 5.0, || tiny_engine(5.0));
        let b = cache.get_or_build(1, 6.0, || tiny_engine(6.0));
        let c = cache.get_or_build(2, 5.0, || tiny_engine(5.0));
        assert_eq!(cache.len(), 3);
        // sanity: all three still serve
        for e in [a, b, c] {
            assert!(e.handle_seeded(0).sample_one().is_ok());
        }
    }

    #[test]
    fn shard_count_is_part_of_the_key() {
        let pts: Vec<Point> = (0..200).map(|i| Point::new(i as f64, i as f64)).collect();
        let cache = EngineCache::new(4);
        let unsharded = cache.get_or_build(1, 5.0, || tiny_engine(5.0));
        let sharded = cache.get_or_build_sharded(1, 5.0, 4, || {
            Engine::build_sharded(&pts, &pts, &SampleConfig::new(5.0), Algorithm::Kds, 4)
        });
        assert_eq!(cache.len(), 2, "sharded and unsharded must not collide");
        assert_eq!(unsharded.shards(), 1);
        assert_eq!(sharded.shards(), 4);
        // hits resolve to the matching topology
        assert_eq!(cache.get(1, 5.0).unwrap().shards(), 1);
        assert_eq!(cache.get_sharded(1, 5.0, 4).unwrap().shards(), 4);
        assert!(cache.get_sharded(1, 5.0, 2).is_none());
    }

    #[test]
    fn requested_algorithm_is_part_of_the_key() {
        let cache = EngineCache::new(4);
        let auto = cache.get_or_build_keyed(1, 5.0, 1, None, || tiny_engine(5.0));
        let forced = cache.get_or_build_keyed(1, 5.0, 1, Some(Algorithm::Bbst), || {
            let pts: Vec<Point> = (0..20).map(|i| Point::new(i as f64, i as f64)).collect();
            Engine::build(&pts, &pts, &SampleConfig::new(5.0), Algorithm::Bbst)
        });
        assert_eq!(cache.len(), 2, "auto and forced must not collide");
        assert_eq!(auto.algorithm(), Algorithm::Kds);
        assert_eq!(forced.algorithm(), Algorithm::Bbst);
        // hits resolve to the matching request
        assert_eq!(
            cache.get_keyed(1, 5.0, 1, None).unwrap().algorithm(),
            Algorithm::Kds
        );
        assert_eq!(
            cache
                .get_keyed(1, 5.0, 1, Some(Algorithm::Bbst))
                .unwrap()
                .algorithm(),
            Algorithm::Bbst
        );
        assert!(cache.get_keyed(1, 5.0, 1, Some(Algorithm::Kds)).is_none());
        // the plain getters address the auto entry
        assert_eq!(cache.get(1, 5.0).unwrap().algorithm(), Algorithm::Kds);
    }

    #[test]
    fn generation_is_part_of_the_key() {
        let cache = EngineCache::new(4);
        let mut builds = 0;
        let g0 = cache.get_or_build_versioned(1, 0, 5.0, 1, None, || {
            builds += 1;
            tiny_engine(5.0)
        });
        // same dataset, new generation: the old engine must never answer
        let g1 = cache.get_or_build_versioned(1, 1, 5.0, 1, None, || {
            builds += 1;
            tiny_engine(5.0)
        });
        assert_eq!(builds, 2, "a new generation must rebuild");
        assert_eq!(cache.len(), 2);
        assert!(cache.get_versioned(1, 0, 5.0, 1, None).is_some());
        assert!(cache.get_versioned(1, 2, 5.0, 1, None).is_none());
        // the legacy unversioned getters address generation 0
        assert!(cache.get(1, 5.0).is_some());
        for e in [g0, g1] {
            assert!(e.handle_seeded(0).sample_one().is_ok());
        }
    }

    #[test]
    fn invalidate_dataset_drops_every_generation_and_shape() {
        let pts: Vec<Point> = (0..200).map(|i| Point::new(i as f64, i as f64)).collect();
        let cache = EngineCache::new(8);
        cache.get_or_build_versioned(1, 0, 5.0, 1, None, || tiny_engine(5.0));
        cache.get_or_build_versioned(1, 3, 5.0, 1, None, || tiny_engine(5.0));
        cache.get_or_build_versioned(1, 3, 6.0, 1, Some(Algorithm::Kds), || tiny_engine(6.0));
        let survivor = cache.get_or_build_sharded(2, 5.0, 4, || {
            Engine::build_sharded(&pts, &pts, &SampleConfig::new(5.0), Algorithm::Kds, 4)
        });
        assert_eq!(cache.len(), 4);
        assert_eq!(cache.invalidate_dataset(1), 3);
        assert_eq!(cache.len(), 1);
        assert!(cache.get_versioned(1, 3, 5.0, 1, None).is_none());
        // other datasets untouched; evicted clones keep serving
        assert!(cache.get_sharded(2, 5.0, 4).is_some());
        assert!(survivor.handle_seeded(0).sample_one().is_ok());
        assert_eq!(cache.invalidate_dataset(99), 0);
    }

    #[test]
    fn lru_evicts_oldest() {
        let cache = EngineCache::new(2);
        cache.get_or_build(1, 1.0, || tiny_engine(1.0));
        cache.get_or_build(2, 1.0, || tiny_engine(1.0));
        // touch key 1 so key 2 is the LRU
        assert!(cache.get(1, 1.0).is_some());
        cache.get_or_build(3, 1.0, || tiny_engine(1.0));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(1, 1.0).is_some(), "recently used entry evicted");
        assert!(cache.get(2, 1.0).is_none(), "LRU entry survived");
        assert!(cache.get(3, 1.0).is_some());
    }

    #[test]
    fn evicted_engines_keep_serving() {
        let cache = EngineCache::new(1);
        let a = cache.get_or_build(1, 1.0, || tiny_engine(1.0));
        cache.get_or_build(2, 1.0, || tiny_engine(1.0)); // evicts a
        assert!(a.handle_seeded(7).sample_one().is_ok());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        EngineCache::new(0);
    }
}
