//! The engine proper: one immutable index, many lightweight handles.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::{BufferedRng, SmallRng};
use rand::{RngCore, SeedableRng};
use srj_core::{
    AnySamplerIndex, BbstCursor, BbstIndex, BufferStats, CellPatchReport, Cursor, DeltaSet,
    JoinPair, JoinSampler, KdsCursor, KdsIndex, KdsRejectionCursor, KdsRejectionIndex,
    OverlayIndex, OverlaySupport, PhaseReport, SampleConfig, SampleError, SamplerIndex as _,
};
use srj_geom::Point;

use crate::planner::{plan, PlanReport};
use crate::shard::ShardedIndex;
use crate::stats::{CellRejectionStats, EngineStats, StatsSnapshot};

/// Which of the paper's samplers an [`Engine`] serves with.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Exact counting + spatial independent range sampling (§III-A).
    Kds,
    /// Grid upper bounds + rejection sampling (§III-B).
    KdsRejection,
    /// The proposed BBST pipeline (§IV).
    Bbst,
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Algorithm::Kds => "KDS",
            Algorithm::KdsRejection => "KDS-rejection",
            Algorithm::Bbst => "BBST",
        })
    }
}

/// The built index: one variant per algorithm, unsharded or
/// `R`-sharded (see [`crate::shard`]).
enum IndexKind {
    Kds(Arc<KdsIndex>),
    KdsRejection(Arc<KdsRejectionIndex>),
    Bbst(Arc<BbstIndex>),
    ShardedKds(Arc<ShardedIndex<KdsIndex>>),
    ShardedKdsRejection(Arc<ShardedIndex<KdsRejectionIndex>>),
    ShardedBbst(Arc<ShardedIndex<BbstIndex>>),
    /// Type-erased index — a delta [`OverlayIndex`] over any of the
    /// above (the overlay's concrete type depends on the base
    /// algorithm, so the enum would otherwise double). The algorithm
    /// and shard topology are recorded alongside because they can no
    /// longer be pattern-matched out.
    Dyn {
        index: Arc<dyn AnySamplerIndex>,
        algorithm: Algorithm,
        shards: usize,
    },
}

/// State shared by an engine and every handle it has issued.
struct EngineShared {
    index: IndexKind,
    stats: EngineStats,
    /// Per-`S`-cell rejection counters (present when the index is
    /// cell-granular). Handles drain their cursors' per-cell rejection
    /// records here; the epoch machinery reads them to pick cells for
    /// targeted repair.
    cell_rejections: Option<CellRejectionStats>,
    plan: Option<PlanReport>,
    /// Whether handles should serve batches through the buffered draw
    /// fast path (pre-drawn per-cell sample buffers + monomorphised
    /// RNG). Handles re-check the flag on every batch, so flipping it
    /// takes effect without re-acquiring handles.
    buffers: AtomicBool,
    /// Sequence number for auto-seeded handles.
    handle_seq: AtomicU64,
}

/// `S`-cell count of an index (0 = not cell-granular).
fn index_cell_count(index: &IndexKind) -> usize {
    match index {
        IndexKind::Kds(ix) => ix.cell_count(),
        IndexKind::KdsRejection(ix) => ix.cell_count(),
        IndexKind::Bbst(ix) => ix.cell_count(),
        IndexKind::ShardedKds(ix) => ix.cell_count(),
        IndexKind::ShardedKdsRejection(ix) => ix.cell_count(),
        IndexKind::ShardedBbst(ix) => ix.cell_count(),
        IndexKind::Dyn { index, .. } => index.any_cell_count(),
    }
}

/// A build-once / serve-many join-sampling service over one `(R, S, l)`
/// workload.
///
/// `Engine::build` (or [`Engine::auto`]) runs the chosen algorithm's
/// build phases exactly once into immutable, `Arc`-shared state; from
/// then on any number of threads obtain [`SamplerHandle`]s — each with
/// its own RNG and its own [`PhaseReport`] — and draw uniform join
/// samples concurrently with zero synchronisation on the hot path
/// (aggregate statistics are relaxed atomics).
///
/// `Engine` is `Clone` (it is a handle to shared state) and `Send +
/// Sync`; clone it into as many threads as needed, or share one
/// `Arc<Engine>`.
///
/// ```
/// use srj_engine::Engine;
/// use srj_core::SampleConfig;
/// use srj_geom::Point;
///
/// let r: Vec<Point> = (0..200).map(|i| Point::new((i % 20) as f64, (i / 20) as f64)).collect();
/// let s = r.clone();
/// let engine = Engine::auto(&r, &s, &SampleConfig::new(2.0));
///
/// let handles: Vec<_> = (0..4).map(|t| engine.handle_seeded(t)).collect();
/// for mut h in handles {
///     let pairs = h.sample(100).unwrap();
///     assert_eq!(pairs.len(), 100);
/// }
/// assert_eq!(engine.stats().samples, 400);
/// ```
#[derive(Clone)]
pub struct Engine {
    shared: Arc<EngineShared>,
}

const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Engine>();
};

impl Engine {
    /// Builds the index for `algorithm` once and wraps it for serving.
    pub fn build(r: &[Point], s: &[Point], config: &SampleConfig, algorithm: Algorithm) -> Engine {
        Engine::build_inner(r, s, config, algorithm, None)
    }

    /// Like [`Engine::build`], but partitions `R` into `shards`
    /// contiguous shards, builds the per-shard indexes in parallel (on
    /// [`SampleConfig::build_threads`] threads), and serves by sampling
    /// a shard `∝ Σµ_i` then within it — statistically identical to the
    /// unsharded engine (see [`crate::shard`]). `shards ≤ 1` is the
    /// plain unsharded build.
    pub fn build_sharded(
        r: &[Point],
        s: &[Point],
        config: &SampleConfig,
        algorithm: Algorithm,
        shards: usize,
    ) -> Engine {
        Engine::build_sharded_inner(r, s, config, algorithm, shards, None)
    }

    fn build_sharded_inner(
        r: &[Point],
        s: &[Point],
        config: &SampleConfig,
        algorithm: Algorithm,
        shards: usize,
        plan: Option<PlanReport>,
    ) -> Engine {
        if shards <= 1 {
            return Engine::build_inner(r, s, config, algorithm, plan);
        }
        // The parallelism budget is spent across shards; nested
        // parallel per-shard builds would oversubscribe the cores.
        let shard_cfg = SampleConfig {
            build_threads: 1,
            ..*config
        };
        // The S-side structures (kd-tree / grid / per-cell BBSTs)
        // depend only on `S`, never on the shard's slice of `R`, so
        // they are built ONCE — with the full `build_threads` budget —
        // and Arc-shared into every shard: k shards cost one S-side,
        // not k (`ShardedIndex::index_memory_bytes` counts the shared
        // allocation once). The S-side build time is folded into the
        // sharded report via `build_with_base`.
        let index = match algorithm {
            Algorithm::Kds => {
                let (s_cells, preprocessing) = KdsIndex::build_s_structure(s, config);
                let base = PhaseReport {
                    preprocessing,
                    ..PhaseReport::default()
                };
                IndexKind::ShardedKds(Arc::new(ShardedIndex::build_with_base(
                    r,
                    config,
                    shards,
                    base,
                    |chunk| KdsIndex::build_shared(chunk, Arc::clone(&s_cells), &shard_cfg),
                )))
            }
            Algorithm::KdsRejection => {
                let (s_cells, preprocessing, grid_mapping) =
                    KdsRejectionIndex::build_s_structures(s, config);
                let base = PhaseReport {
                    preprocessing,
                    grid_mapping,
                    ..PhaseReport::default()
                };
                IndexKind::ShardedKdsRejection(Arc::new(ShardedIndex::build_with_base(
                    r,
                    config,
                    shards,
                    base,
                    |chunk| {
                        KdsRejectionIndex::build_shared(chunk, Arc::clone(&s_cells), &shard_cfg)
                    },
                )))
            }
            Algorithm::Bbst => {
                let s_side = BbstIndex::build_s_structures(s, config);
                let base = PhaseReport {
                    preprocessing: s_side.preprocessing,
                    grid_mapping: s_side.grid_mapping,
                    ..PhaseReport::default()
                };
                IndexKind::ShardedBbst(Arc::new(ShardedIndex::build_with_base(
                    r,
                    config,
                    shards,
                    base,
                    |chunk| BbstIndex::build_shared(chunk, &shard_cfg, &s_side),
                )))
            }
        };
        Engine::from_index(index, plan, true)
    }

    /// Lets the planner pick the algorithm from a cheap `O(n + m)`
    /// workload estimate (see [`crate::planner`]), then builds —
    /// donating the planner's estimation grid to the index build, so
    /// the grid-mapping phase is never paid twice.
    ///
    /// The decision and its supporting estimates are kept in
    /// [`Engine::plan`].
    pub fn auto(r: &[Point], s: &[Point], config: &SampleConfig) -> Engine {
        let (report, estimation_grid) = plan(r, s, config, 1);
        let index = match (report.algorithm, estimation_grid) {
            (Algorithm::KdsRejection, Some((grid, grid_time))) => {
                IndexKind::KdsRejection(Arc::new(KdsRejectionIndex::build_with_grid(
                    r, s, config, grid, grid_time,
                )))
            }
            (Algorithm::Bbst, Some((grid, grid_time))) => IndexKind::Bbst(Arc::new(
                BbstIndex::build_with_grid(r, config, grid, grid_time),
            )),
            (algorithm, _) => return Engine::build_inner(r, s, config, algorithm, Some(report)),
        };
        Engine::from_index(index, Some(report), true)
    }

    /// Shard-aware [`Engine::auto`]: the planner picks the algorithm,
    /// then the build is `R`-sharded into `shards` shards ([`PlanReport`]
    /// records the shard count it planned for). The planner's grid
    /// donation only applies to the unsharded path; the sharded build
    /// still builds its `S`-side structures only once, `Arc`-shared
    /// across all shards.
    pub fn auto_sharded(r: &[Point], s: &[Point], config: &SampleConfig, shards: usize) -> Engine {
        if shards <= 1 {
            return Engine::auto(r, s, config);
        }
        let (report, _grid) = plan(r, s, config, shards);
        let shards = report.num_shards;
        Engine::build_sharded_inner(r, s, config, report.algorithm, shards, Some(report))
    }

    fn build_inner(
        r: &[Point],
        s: &[Point],
        config: &SampleConfig,
        algorithm: Algorithm,
        plan: Option<PlanReport>,
    ) -> Engine {
        let index = match algorithm {
            Algorithm::Kds => IndexKind::Kds(Arc::new(KdsIndex::build(r, s, config))),
            Algorithm::KdsRejection => {
                IndexKind::KdsRejection(Arc::new(KdsRejectionIndex::build(r, s, config)))
            }
            Algorithm::Bbst => IndexKind::Bbst(Arc::new(BbstIndex::build(r, s, config))),
        };
        Engine::from_index(index, plan, true)
    }

    /// Wraps this engine's index in a delta [`OverlayIndex`], producing
    /// a new engine that answers uniformly over the **mutated** dataset
    /// (`base ∖ tombstones ∪ inserts`) while sharing the base build.
    ///
    /// The returned engine has fresh statistics and a fresh handle
    /// sequence; the base engine — and every handle it already issued —
    /// keeps serving the pre-mutation epoch untouched. This is the
    /// minor-epoch half of `EpochEngine`'s swap mechanism.
    ///
    /// # Panics
    /// Panics if `self` is itself an overlay engine: overlay snapshots
    /// always stack on the epoch's *full* build, never on each other
    /// (stacking would re-filter tombstones at every level and the
    /// delta bookkeeping would no longer be O(|delta|)).
    pub fn with_overlay(
        &self,
        delta: DeltaSet,
        support: &OverlaySupport,
        config: &SampleConfig,
    ) -> Engine {
        let algorithm = self.algorithm();
        let shards = self.shards();
        let index: Arc<dyn AnySamplerIndex> = match &self.shared.index {
            IndexKind::Kds(ix) => {
                Arc::new(OverlayIndex::new(Arc::clone(ix), delta, support, config))
            }
            IndexKind::KdsRejection(ix) => {
                Arc::new(OverlayIndex::new(Arc::clone(ix), delta, support, config))
            }
            IndexKind::Bbst(ix) => {
                Arc::new(OverlayIndex::new(Arc::clone(ix), delta, support, config))
            }
            IndexKind::ShardedKds(ix) => {
                Arc::new(OverlayIndex::new(Arc::clone(ix), delta, support, config))
            }
            IndexKind::ShardedKdsRejection(ix) => {
                Arc::new(OverlayIndex::new(Arc::clone(ix), delta, support, config))
            }
            IndexKind::ShardedBbst(ix) => {
                Arc::new(OverlayIndex::new(Arc::clone(ix), delta, support, config))
            }
            IndexKind::Dyn { .. } => {
                panic!("overlay engines must wrap the epoch's full build, not another overlay")
            }
        };
        Engine::from_index(
            IndexKind::Dyn {
                index,
                algorithm,
                shards,
            },
            self.shared.plan,
            self.buffers_enabled(),
        )
    }

    /// Rebuilds this engine over a new `R` while **reusing** its
    /// `Arc`-shared `S`-side structures (kd-tree / grid / per-cell
    /// BBSTs) — the cheap major-epoch swap when only `R` mutated.
    /// Algorithm and shard topology are preserved; the `S`-side is
    /// neither rebuilt nor copied.
    ///
    /// Returns `None` for overlay engines (rebuild from the epoch base
    /// instead). The caller must guarantee `S` is unchanged and
    /// `config` matches the original build (`build_shared` asserts the
    /// structural parts).
    pub fn rebuild_r_only(&self, r: &[Point], config: &SampleConfig) -> Option<Engine> {
        let shard_cfg = SampleConfig {
            build_threads: 1,
            ..*config
        };
        let index = match &self.shared.index {
            IndexKind::Kds(ix) => {
                IndexKind::Kds(Arc::new(KdsIndex::build_shared(r, ix.s_cells(), config)))
            }
            IndexKind::KdsRejection(ix) => IndexKind::KdsRejection(Arc::new(
                KdsRejectionIndex::build_shared(r, ix.s_structures(), config),
            )),
            IndexKind::Bbst(ix) => IndexKind::Bbst(Arc::new(BbstIndex::build_shared(
                r,
                config,
                &ix.s_structures(),
            ))),
            IndexKind::ShardedKds(sx) => {
                let s_cells = sx.shard(0).s_cells();
                IndexKind::ShardedKds(Arc::new(ShardedIndex::build(
                    r,
                    config,
                    sx.shard_count(),
                    |chunk| KdsIndex::build_shared(chunk, Arc::clone(&s_cells), &shard_cfg),
                )))
            }
            IndexKind::ShardedKdsRejection(sx) => {
                let s_cells = sx.shard(0).s_structures();
                IndexKind::ShardedKdsRejection(Arc::new(ShardedIndex::build(
                    r,
                    config,
                    sx.shard_count(),
                    |chunk| {
                        KdsRejectionIndex::build_shared(chunk, Arc::clone(&s_cells), &shard_cfg)
                    },
                )))
            }
            IndexKind::ShardedBbst(sx) => {
                let s_side = sx.shard(0).s_structures();
                IndexKind::ShardedBbst(Arc::new(ShardedIndex::build(
                    r,
                    config,
                    sx.shard_count(),
                    |chunk| BbstIndex::build_shared(chunk, &shard_cfg, &s_side),
                )))
            }
            IndexKind::Dyn { .. } => return None,
        };
        // The old plan described the pre-mutation workload.
        Some(Engine::from_index(index, None, self.buffers_enabled()))
    }

    /// Rebuilds this engine over a new `R` while **patching** its
    /// `S`-side cell by cell for the given `S` mutations: only the
    /// cells touched by `inserted_s`/`deleted_s` are rebuilt; every
    /// clean cell's structure is `Arc`-shared with this engine's
    /// (asserted by [`Engine::s_cell_tokens`] in the tests). Inserted
    /// points get appended ids, deleted ids become dead — id-stable,
    /// which is what makes the sharing sound. Algorithm and shard
    /// topology are preserved.
    ///
    /// Returns `None` for overlay engines (patch from the epoch base
    /// instead). This is the cell-granular major-epoch swap: `O(dirty
    /// cells)` S-side work instead of `O(|S|)`.
    pub fn rebuild_with_s_patch(
        &self,
        r: &[Point],
        config: &SampleConfig,
        inserted_s: &[Point],
        deleted_s: &std::collections::HashSet<srj_geom::PointId>,
    ) -> Option<(Engine, CellPatchReport)> {
        let shard_cfg = SampleConfig {
            build_threads: 1,
            ..*config
        };
        let (index, report) = match &self.shared.index {
            IndexKind::Kds(ix) => {
                let (s_cells, rep) = ix.s_cells().patch(inserted_s, deleted_s);
                (
                    IndexKind::Kds(Arc::new(KdsIndex::build_shared(
                        r,
                        Arc::new(s_cells),
                        config,
                    ))),
                    rep,
                )
            }
            IndexKind::KdsRejection(ix) => {
                let (s_cells, rep) = ix.s_structures().patch(inserted_s, deleted_s);
                (
                    IndexKind::KdsRejection(Arc::new(KdsRejectionIndex::build_shared(
                        r,
                        Arc::new(s_cells),
                        config,
                    ))),
                    rep,
                )
            }
            IndexKind::Bbst(ix) => {
                let (s_side, rep) = ix.s_structures().patch(inserted_s, deleted_s);
                (
                    IndexKind::Bbst(Arc::new(BbstIndex::build_shared(r, config, &s_side))),
                    rep,
                )
            }
            IndexKind::ShardedKds(sx) => {
                let (s_cells, rep) = sx.shard(0).s_cells().patch(inserted_s, deleted_s);
                let s_cells = Arc::new(s_cells);
                (
                    IndexKind::ShardedKds(Arc::new(ShardedIndex::build(
                        r,
                        config,
                        sx.shard_count(),
                        |chunk| KdsIndex::build_shared(chunk, Arc::clone(&s_cells), &shard_cfg),
                    ))),
                    rep,
                )
            }
            IndexKind::ShardedKdsRejection(sx) => {
                let (s_cells, rep) = sx.shard(0).s_structures().patch(inserted_s, deleted_s);
                let s_cells = Arc::new(s_cells);
                (
                    IndexKind::ShardedKdsRejection(Arc::new(ShardedIndex::build(
                        r,
                        config,
                        sx.shard_count(),
                        |chunk| {
                            KdsRejectionIndex::build_shared(chunk, Arc::clone(&s_cells), &shard_cfg)
                        },
                    ))),
                    rep,
                )
            }
            IndexKind::ShardedBbst(sx) => {
                let (s_side, rep) = sx.shard(0).s_structures().patch(inserted_s, deleted_s);
                (
                    IndexKind::ShardedBbst(Arc::new(ShardedIndex::build(
                        r,
                        config,
                        sx.shard_count(),
                        |chunk| BbstIndex::build_shared(chunk, &shard_cfg, &s_side),
                    ))),
                    rep,
                )
            }
            IndexKind::Dyn { .. } => return None,
        };
        Some((
            Engine::from_index(index, None, self.buffers_enabled()),
            report,
        ))
    }

    /// Re-tightens the named `S`-cells to exact (per-bucket-mass)
    /// bounds and recomputes the per-`r` rows over the unchanged,
    /// fully shared `S`-side — the targeted repair for cells whose
    /// measured rejection rate shows a loose Virtual-mass bound. Only
    /// the BBST family has a per-cell knob to turn; other algorithms
    /// (and overlay engines) return `None`, as does a repair that
    /// would change nothing (every named cell already exact).
    pub fn repair_cells(&self, slots: &[u32]) -> Option<Engine> {
        let index = match &self.shared.index {
            IndexKind::Bbst(ix) => IndexKind::Bbst(Arc::new(ix.with_exact_cells(slots)?)),
            IndexKind::ShardedBbst(sx) => IndexKind::ShardedBbst(Arc::new(
                sx.try_map_shards(|shard| shard.with_exact_cells(slots))?,
            )),
            _ => return None,
        };
        Some(Engine::from_index(
            index,
            self.shared.plan,
            self.buffers_enabled(),
        ))
    }

    /// Wraps a built index with fresh stats / handle sequence /
    /// per-cell rejection counters. `buffers` seeds the fast-path
    /// flag: `true` for fresh builds, inherited for derived engines
    /// (overlays, rebuilds, repairs) so an operator's toggle survives
    /// epoch swaps.
    fn from_index(index: IndexKind, plan: Option<PlanReport>, buffers: bool) -> Engine {
        let cells = index_cell_count(&index);
        Engine {
            shared: Arc::new(EngineShared {
                index,
                stats: EngineStats::new(),
                cell_rejections: (cells > 0).then(|| CellRejectionStats::new(cells)),
                plan,
                buffers: AtomicBool::new(buffers),
                handle_seq: AtomicU64::new(0),
            }),
        }
    }

    /// Whether handles serve batches through the buffered draw fast
    /// path (see [`SamplerHandle::sample_batch`]).
    pub fn buffers_enabled(&self) -> bool {
        self.shared.buffers.load(Ordering::Relaxed)
    }

    /// Flips the buffered draw fast path for every handle of this
    /// engine. Handles re-check the flag at each batch, so the change
    /// applies without re-acquiring them; disabling also drops each
    /// handle's pinned buffers at its next batch.
    pub fn set_buffers_enabled(&self, on: bool) {
        self.shared.buffers.store(on, Ordering::Relaxed);
    }

    /// Whether this engine serves through a delta overlay (pending
    /// mutations present) rather than a full build.
    pub fn is_overlay(&self) -> bool {
        matches!(self.shared.index, IndexKind::Dyn { .. })
    }

    /// Whether `self` and `other` are clones of the same engine (share
    /// one stats/index cell) — lets the epoch machinery tell a real
    /// swap from a same-engine reinstall before retiring counters.
    pub(crate) fn shares_state(&self, other: &Engine) -> bool {
        Arc::ptr_eq(&self.shared, &other.shared)
    }

    /// The algorithm this engine serves with.
    pub fn algorithm(&self) -> Algorithm {
        match &self.shared.index {
            IndexKind::Kds(_) | IndexKind::ShardedKds(_) => Algorithm::Kds,
            IndexKind::KdsRejection(_) | IndexKind::ShardedKdsRejection(_) => {
                Algorithm::KdsRejection
            }
            IndexKind::Bbst(_) | IndexKind::ShardedBbst(_) => Algorithm::Bbst,
            IndexKind::Dyn { algorithm, .. } => *algorithm,
        }
    }

    /// How many `R` shards this engine serves from (`1` when unsharded).
    pub fn shards(&self) -> usize {
        match &self.shared.index {
            IndexKind::Kds(_) | IndexKind::KdsRejection(_) | IndexKind::Bbst(_) => 1,
            IndexKind::ShardedKds(ix) => ix.shard_count(),
            IndexKind::ShardedKdsRejection(ix) => ix.shard_count(),
            IndexKind::ShardedBbst(ix) => ix.shard_count(),
            IndexKind::Dyn { shards, .. } => *shards,
        }
    }

    /// The planner's decision report, if this engine came from
    /// [`Engine::auto`], with [`PlanReport::buffers`] stamped from the
    /// engine's **live** fast-path flag (buffer state is a serving-time
    /// property the build-time planner cannot know).
    pub fn plan(&self) -> Option<PlanReport> {
        self.shared.plan.map(|mut p| {
            p.buffers = self.buffers_enabled();
            p
        })
    }

    /// A new serving handle with an automatically derived, per-handle
    /// unique seed. Deterministic: the k-th handle of an engine always
    /// gets the same seed.
    pub fn handle(&self) -> SamplerHandle {
        let seq = self.shared.handle_seq.fetch_add(1, Ordering::Relaxed);
        // SplitMix64 step keeps consecutive sequence numbers from
        // yielding correlated xoshiro seeds.
        let mut z = seq.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        self.handle_seeded(z ^ (z >> 31))
    }

    /// A new serving handle seeded with `seed`: two handles with the
    /// same seed over the same engine draw identical sample streams.
    pub fn handle_seeded(&self, seed: u64) -> SamplerHandle {
        let cursor = match &self.shared.index {
            IndexKind::Kds(ix) => CursorKind::Kds(KdsCursor::new(Arc::clone(ix))),
            IndexKind::KdsRejection(ix) => {
                CursorKind::KdsRejection(KdsRejectionCursor::new(Arc::clone(ix)))
            }
            IndexKind::Bbst(ix) => CursorKind::Bbst(BbstCursor::new(Arc::clone(ix))),
            IndexKind::ShardedKds(ix) => CursorKind::ShardedKds(Cursor::new(Arc::clone(ix))),
            IndexKind::ShardedKdsRejection(ix) => {
                CursorKind::ShardedKdsRejection(Cursor::new(Arc::clone(ix)))
            }
            IndexKind::ShardedBbst(ix) => CursorKind::ShardedBbst(Cursor::new(Arc::clone(ix))),
            IndexKind::Dyn { index, .. } => CursorKind::Dyn(Arc::clone(index).any_cursor()),
        };
        SamplerHandle {
            cursor,
            rng: SmallRng::seed_from_u64(seed),
            shared: Arc::clone(&self.shared),
            reject_buf: Vec::new(),
            buffers_armed: false,
        }
    }

    /// Aggregate statistics across every handle this engine has issued.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// `(hits, refills, invalidations)` of the buffered draw fast path
    /// across every handle — three relaxed loads, no histogram walk.
    pub fn buffer_counters(&self) -> (u64, u64, u64) {
        self.shared.stats.buffer_counters()
    }

    /// Just `(samples, iterations)` — the rejection-rate pair as two
    /// relaxed atomic loads, for callers (the epoch re-plan check runs
    /// per handle acquisition) that must not pay for a full
    /// histogram-walking [`Engine::stats`] snapshot.
    pub fn sample_counters(&self) -> (u64, u64) {
        self.shared.stats.sample_counters()
    }

    /// Build-phase timing of the underlying index. For sharded engines
    /// the phase decomposition is collapsed: `upper_bounding` is the
    /// wall-clock of the whole parallel shard-build and
    /// `upper_bounding_cpu` the summed per-shard build time.
    pub fn build_report(&self) -> PhaseReport {
        use srj_core::SamplerIndex as _;
        match &self.shared.index {
            IndexKind::Kds(ix) => ix.build_report(),
            IndexKind::KdsRejection(ix) => ix.build_report(),
            IndexKind::Bbst(ix) => ix.build_report(),
            IndexKind::ShardedKds(ix) => ix.index_build_report(),
            IndexKind::ShardedKdsRejection(ix) => ix.index_build_report(),
            IndexKind::ShardedBbst(ix) => ix.index_build_report(),
            IndexKind::Dyn { index, .. } => index.any_build_report(),
        }
    }

    /// Approximate heap footprint of the shared index.
    pub fn memory_bytes(&self) -> usize {
        match &self.shared.index {
            IndexKind::Kds(ix) => ix.memory_bytes(),
            IndexKind::KdsRejection(ix) => ix.memory_bytes(),
            IndexKind::Bbst(ix) => ix.memory_bytes(),
            IndexKind::ShardedKds(ix) => ix.index_memory_bytes(),
            IndexKind::ShardedKdsRejection(ix) => ix.index_memory_bytes(),
            IndexKind::ShardedBbst(ix) => ix.index_memory_bytes(),
            IndexKind::Dyn { index, .. } => index.any_memory_bytes(),
        }
    }

    /// Total sampling weight `Σµ` the engine draws against (`= |J|` for
    /// exact-counting indexes). This is the quantity a delete-heavy
    /// workload must see **shrink** across rebuilds — the serving stats
    /// export it for exactly that check.
    pub fn total_weight(&self) -> f64 {
        match &self.shared.index {
            IndexKind::Kds(ix) => ix.total_weight(),
            IndexKind::KdsRejection(ix) => ix.total_weight(),
            IndexKind::Bbst(ix) => ix.total_weight(),
            IndexKind::ShardedKds(ix) => ix.total_weight(),
            IndexKind::ShardedKdsRejection(ix) => ix.total_weight(),
            IndexKind::ShardedBbst(ix) => ix.total_weight(),
            IndexKind::Dyn { index, .. } => index.any_total_weight(),
        }
    }

    /// Number of `S`-side cells the index draws from (0 when the index
    /// is not cell-granular, e.g. a type-erased overlay's counters live
    /// on its base engine).
    pub fn cell_count(&self) -> usize {
        index_cell_count(&self.shared.index)
    }

    /// Snapshot of the per-cell rejection counters (slot → rejected
    /// iterations attributed to that cell), or `None` when the index
    /// has no cell structure. The epoch machinery feeds this into
    /// `planner::repair_candidates` to pick cells for targeted repair.
    pub fn cell_rejections(&self) -> Option<Vec<u64>> {
        self.shared.cell_rejections.as_ref().map(|c| c.snapshot())
    }

    /// Per-cell sharing tokens of the `S`-side — each cell's grid
    /// coordinate paired with the `Arc` pointer of its per-cell
    /// structure. Two engines reporting the same token for a coordinate
    /// share that cell's structure; a patch-based rebuild must keep the
    /// token of every clean cell (asserted in the cell-patching tests).
    /// `None` for overlay engines.
    pub fn s_cell_tokens(&self) -> Option<Vec<((i32, i32), usize)>> {
        match &self.shared.index {
            IndexKind::Kds(ix) => Some(ix.s_cells().store().cell_tokens()),
            IndexKind::KdsRejection(ix) => Some(ix.s_structures().store().cell_tokens()),
            IndexKind::Bbst(ix) => Some(ix.s_structures().store().cell_tokens()),
            IndexKind::ShardedKds(sx) => Some(sx.shard(0).s_cells().store().cell_tokens()),
            IndexKind::ShardedKdsRejection(sx) => {
                Some(sx.shard(0).s_structures().store().cell_tokens())
            }
            IndexKind::ShardedBbst(sx) => Some(sx.shard(0).s_structures().store().cell_tokens()),
            IndexKind::Dyn { .. } => None,
        }
    }
}

/// Per-algorithm cursor, wrapped so a handle is one concrete type.
enum CursorKind {
    Kds(KdsCursor),
    KdsRejection(KdsRejectionCursor),
    Bbst(BbstCursor),
    ShardedKds(Cursor<ShardedIndex<KdsIndex>>),
    ShardedKdsRejection(Cursor<ShardedIndex<KdsRejectionIndex>>),
    ShardedBbst(Cursor<ShardedIndex<BbstIndex>>),
    /// Boxed cursor over a type-erased ([`IndexKind::Dyn`]) index.
    Dyn(Box<dyn JoinSampler + Send>),
}

impl CursorKind {
    fn as_sampler(&mut self) -> &mut dyn JoinSampler {
        match self {
            CursorKind::Kds(c) => c,
            CursorKind::KdsRejection(c) => c,
            CursorKind::Bbst(c) => c,
            CursorKind::ShardedKds(c) => c,
            CursorKind::ShardedKdsRejection(c) => c,
            CursorKind::ShardedBbst(c) => c,
            CursorKind::Dyn(c) => &mut **c,
        }
    }

    fn report(&self) -> PhaseReport {
        match self {
            CursorKind::Kds(c) => c.report(),
            CursorKind::KdsRejection(c) => c.report(),
            CursorKind::Bbst(c) => c.report(),
            CursorKind::ShardedKds(c) => c.report(),
            CursorKind::ShardedKdsRejection(c) => c.report(),
            CursorKind::ShardedBbst(c) => c.report(),
            CursorKind::Dyn(c) => c.report(),
        }
    }

    /// Arms / disarms the cursor's per-cell sample buffers. The
    /// type-erased overlay cursor has no buffer hooks (its draws mix
    /// three pair sources per iteration), so `Dyn` is a no-op.
    fn set_buffers(&mut self, on: bool) {
        match self {
            CursorKind::Kds(c) => c.set_buffers(on),
            CursorKind::KdsRejection(c) => c.set_buffers(on),
            CursorKind::Bbst(c) => c.set_buffers(on),
            CursorKind::ShardedKds(c) => c.set_buffers(on),
            CursorKind::ShardedKdsRejection(c) => c.set_buffers(on),
            CursorKind::ShardedBbst(c) => c.set_buffers(on),
            CursorKind::Dyn(_) => {}
        }
    }

    /// Pins the buffered path's RNG to a seed-derived stream so the
    /// buffered draw sequence is reproducible per handle seed.
    fn seed_buffers(&mut self, seed: u64) {
        match self {
            CursorKind::Kds(c) => c.seed_buffers(seed),
            CursorKind::KdsRejection(c) => c.seed_buffers(seed),
            CursorKind::Bbst(c) => c.seed_buffers(seed),
            CursorKind::ShardedKds(c) => c.seed_buffers(seed),
            CursorKind::ShardedKdsRejection(c) => c.seed_buffers(seed),
            CursorKind::ShardedBbst(c) => c.seed_buffers(seed),
            CursorKind::Dyn(_) => {}
        }
    }

    /// Takes the cursor's buffer counters accumulated since the last
    /// drain (zeroes for `Dyn`).
    fn drain_buffer_stats(&mut self) -> BufferStats {
        match self {
            CursorKind::Kds(c) => c.drain_buffer_stats(),
            CursorKind::KdsRejection(c) => c.drain_buffer_stats(),
            CursorKind::Bbst(c) => c.drain_buffer_stats(),
            CursorKind::ShardedKds(c) => c.drain_buffer_stats(),
            CursorKind::ShardedKdsRejection(c) => c.drain_buffer_stats(),
            CursorKind::ShardedBbst(c) => c.drain_buffer_stats(),
            CursorKind::Dyn(_) => BufferStats::default(),
        }
    }
}

/// A lightweight per-thread serving handle: its own RNG, its own
/// cursor (scratch + [`PhaseReport`]), a shared immutable index.
///
/// Handles are `Send` (move one into each serving thread) but
/// deliberately not `Sync` — a handle is exactly the state that must
/// not be shared. Creation is O(1); create them freely.
pub struct SamplerHandle {
    cursor: CursorKind,
    rng: SmallRng,
    shared: Arc<EngineShared>,
    /// Reused drain buffer for per-cell rejection records.
    reject_buf: Vec<u32>,
    /// Whether this handle's cursor currently has its sample buffers
    /// armed (mirrors the engine's flag as of the last batch).
    buffers_armed: bool,
}

const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<SamplerHandle>();
};

impl SamplerHandle {
    /// Drains the cursor's per-cell rejection records into the shared
    /// counters (no-op when the index has none; typically 0–1 entries
    /// per draw).
    fn flush_cell_rejections(&mut self) {
        if let Some(cells) = &self.shared.cell_rejections {
            self.cursor
                .as_sampler()
                .take_cell_rejections(&mut self.reject_buf);
            cells.record_all(self.reject_buf.drain(..));
        }
    }

    /// Draws one uniform join sample.
    pub fn sample_one(&mut self) -> Result<JoinPair, SampleError> {
        srj_obs::trace::event("engine_query", "sample_one");
        let before = self.cursor.report().iterations;
        let t = Instant::now();
        let out = self.cursor.as_sampler().sample_one(&mut self.rng);
        let iterations = self.cursor.report().iterations - before;
        match &out {
            Ok(_) => self.shared.stats.record_query(1, iterations, t.elapsed()),
            Err(_) => self.shared.stats.record_error(iterations, t.elapsed()),
        }
        self.flush_cell_rejections();
        out
    }

    /// Draws `t` uniform join samples with replacement.
    pub fn sample(&mut self, t: usize) -> Result<Vec<JoinPair>, SampleError> {
        srj_obs::trace::event("engine_query", "sample_batch");
        let before = self.cursor.report().iterations;
        let start = Instant::now();
        let out = self.cursor.as_sampler().sample(t, &mut self.rng);
        let iterations = self.cursor.report().iterations - before;
        match &out {
            Ok(v) => self
                .shared
                .stats
                .record_query(v.len() as u64, iterations, start.elapsed()),
            Err(_) => self.shared.stats.record_error(iterations, start.elapsed()),
        }
        self.flush_cell_rejections();
        out
    }

    /// Syncs the cursor's buffer state with the engine's flag; on
    /// arming, pins the buffer RNG to a stream derived from this
    /// handle's own generator. Deriving (rather than taking a slot off
    /// the process-wide seed sequence) keeps the repeatability
    /// contract: a seeded handle's whole draw stream — buffered pops
    /// included — is a pure function of its seed, so two same-seed
    /// requests against the same epoch return identical pairs. For the
    /// same reason nothing here may consult cross-request state (e.g.
    /// warm-starting from the shared rejection counters would let one
    /// request's traffic change the next one's stream); promotion is
    /// left to the per-handle heat ladder, which a hot cell climbs in
    /// [`srj_core::PROMOTE_HITS`] draws.
    fn arm_buffers(&mut self) {
        let want = self.shared.buffers.load(Ordering::Relaxed);
        if want == self.buffers_armed {
            return;
        }
        self.buffers_armed = want;
        self.cursor.set_buffers(want);
        if want {
            let seed = self.rng.next_u64();
            self.cursor.seed_buffers(seed);
        }
    }

    /// Draws `t` uniform join samples with replacement through the
    /// **buffered fast path**: the draw loop is monomorphised over the
    /// handle's concrete [`SmallRng`] (no per-draw virtual dispatch),
    /// hot fully-covered `S`-cells serve from pre-drawn sample buffers
    /// when [`Engine::set_buffers_enabled`] is on, and the whole batch
    /// is timed and recorded as **one** engine query (a per-item
    /// `Instant` pair would cost more than a buffered draw).
    ///
    /// The distribution is identical to [`SamplerHandle::sample`] —
    /// buffers only short-circuit draws for cells whose selection
    /// probability already equals their exact member weight — but the
    /// RNG consumption schedule differs, so the two paths produce
    /// different (equally uniform) streams from the same seed.
    ///
    /// The type-erased overlay cursor keeps its object-safe draw; it
    /// still gains batched RNG by wrapping this handle's generator in
    /// a [`BufferedRng`] word stash for the duration of the batch.
    pub fn sample_batch(&mut self, t: usize) -> Result<Vec<JoinPair>, SampleError> {
        srj_obs::trace::event("engine_query", "sample_batch");
        self.arm_buffers();
        let before = self.cursor.report().iterations;
        let start = Instant::now();
        let mut out = Vec::new();
        let res = match &mut self.cursor {
            CursorKind::Kds(c) => c.sample_batch(t, &mut self.rng, &mut out),
            CursorKind::KdsRejection(c) => c.sample_batch(t, &mut self.rng, &mut out),
            CursorKind::Bbst(c) => c.sample_batch(t, &mut self.rng, &mut out),
            CursorKind::ShardedKds(c) => c.sample_batch(t, &mut self.rng, &mut out),
            CursorKind::ShardedKdsRejection(c) => c.sample_batch(t, &mut self.rng, &mut out),
            CursorKind::ShardedBbst(c) => c.sample_batch(t, &mut self.rng, &mut out),
            CursorKind::Dyn(c) => {
                let mut stash = BufferedRng::new(&mut self.rng);
                c.sample(t, &mut stash).map(|v| out = v)
            }
        };
        let iterations = self.cursor.report().iterations - before;
        match &res {
            Ok(()) => self
                .shared
                .stats
                .record_query(out.len() as u64, iterations, start.elapsed()),
            Err(_) => self.shared.stats.record_error(iterations, start.elapsed()),
        }
        let bufstats = self.cursor.drain_buffer_stats();
        if bufstats != BufferStats::default() {
            self.shared.stats.record_buffer_stats(bufstats);
        }
        self.flush_cell_rejections();
        res.map(|()| out)
    }

    /// Progressive sampling: an iterator of uniform join samples that
    /// can be stopped at any point (the paper's `t = ∞` reading of
    /// Definition 2). Ends on the first error, which
    /// [`HandleStream::error`] exposes.
    ///
    /// Statistics: to keep shared atomics off the per-item path, a
    /// stream does **not** record one engine query per item — it
    /// accumulates the time spent **inside the draws** (consumer time
    /// between `next()` calls is excluded, so latency quantiles stay a
    /// serving-side signal) and flushes one aggregate query per
    /// [`STREAM_STATS_BATCH`] samples, plus the remainder when the
    /// stream is dropped.
    pub fn stream(&mut self) -> HandleStream<'_> {
        HandleStream {
            handle: self,
            error: None,
            batch_draw_time: Duration::ZERO,
            batch_samples: 0,
            batch_iterations: 0,
        }
    }

    /// This handle's phase report: the shared index's build phases plus
    /// this handle's own sampling statistics.
    pub fn report(&self) -> PhaseReport {
        self.cursor.report()
    }

    /// Observed rejection overhead of this handle so far:
    /// `iterations / samples` (the serving-time measurement of the
    /// planner's `Σµ/|J|` estimate; `1.0` means no rejections). `None`
    /// before the first accepted sample. A later PR feeds this back
    /// into the planner to re-plan when the estimate was wrong.
    pub fn rejection_rate(&self) -> Option<f64> {
        let rep = self.cursor.report();
        (rep.samples > 0).then(|| rep.iterations as f64 / rep.samples as f64)
    }

    /// The algorithm behind this handle.
    pub fn algorithm(&self) -> Algorithm {
        match &self.shared.index {
            IndexKind::Kds(_) | IndexKind::ShardedKds(_) => Algorithm::Kds,
            IndexKind::KdsRejection(_) | IndexKind::ShardedKdsRejection(_) => {
                Algorithm::KdsRejection
            }
            IndexKind::Bbst(_) | IndexKind::ShardedBbst(_) => Algorithm::Bbst,
            IndexKind::Dyn { algorithm, .. } => *algorithm,
        }
    }
}

/// How many stream items are aggregated into one recorded engine
/// query (see [`SamplerHandle::stream`]).
pub const STREAM_STATS_BATCH: u64 = 256;

/// Iterator over a handle's progressive samples; see
/// [`SamplerHandle::stream`].
pub struct HandleStream<'a> {
    handle: &'a mut SamplerHandle,
    error: Option<SampleError>,
    /// Time spent inside draws since the last flush (consumer time
    /// between `next()` calls is deliberately excluded).
    batch_draw_time: Duration,
    batch_samples: u64,
    batch_iterations: u64,
}

impl HandleStream<'_> {
    /// The error that terminated the stream, if any.
    pub fn error(&self) -> Option<SampleError> {
        self.error
    }

    fn flush_stats(&mut self) {
        srj_obs::trace::event("draw_loop", "stats_flush");
        if self.batch_samples > 0 {
            self.handle.shared.stats.record_query(
                self.batch_samples,
                self.batch_iterations,
                self.batch_draw_time,
            );
            self.batch_samples = 0;
            self.batch_iterations = 0;
        }
        self.batch_draw_time = Duration::ZERO;
        self.handle.flush_cell_rejections();
    }
}

impl Iterator for HandleStream<'_> {
    type Item = JoinPair;

    fn next(&mut self) -> Option<JoinPair> {
        if self.error.is_some() {
            return None;
        }
        let before = self.handle.cursor.report().iterations;
        let t = Instant::now();
        let drawn = self
            .handle
            .cursor
            .as_sampler()
            .sample_one(&mut self.handle.rng);
        let draw_time = t.elapsed();
        let iterations = self.handle.cursor.report().iterations - before;
        match drawn {
            Ok(p) => {
                self.batch_draw_time += draw_time;
                self.batch_samples += 1;
                self.batch_iterations += iterations;
                if self.batch_samples >= STREAM_STATS_BATCH {
                    self.flush_stats();
                }
                Some(p)
            }
            Err(e) => {
                self.flush_stats();
                self.handle.shared.stats.record_error(iterations, draw_time);
                self.error = Some(e);
                None
            }
        }
    }
}

impl Drop for HandleStream<'_> {
    fn drop(&mut self) {
        self.flush_stats();
    }
}
