//! The engine proper: one immutable index, many lightweight handles.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::SeedableRng;
use srj_core::{
    BbstCursor, BbstIndex, JoinPair, JoinSampler, KdsCursor, KdsIndex, KdsRejectionCursor,
    KdsRejectionIndex, PhaseReport, SampleConfig, SampleError,
};
use srj_geom::Point;

use crate::planner::{plan, PlanReport};
use crate::stats::{EngineStats, StatsSnapshot};

/// Which of the paper's samplers an [`Engine`] serves with.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Exact counting + spatial independent range sampling (§III-A).
    Kds,
    /// Grid upper bounds + rejection sampling (§III-B).
    KdsRejection,
    /// The proposed BBST pipeline (§IV).
    Bbst,
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Algorithm::Kds => "KDS",
            Algorithm::KdsRejection => "KDS-rejection",
            Algorithm::Bbst => "BBST",
        })
    }
}

/// The built index, one variant per algorithm.
enum IndexKind {
    Kds(Arc<KdsIndex>),
    KdsRejection(Arc<KdsRejectionIndex>),
    Bbst(Arc<BbstIndex>),
}

/// State shared by an engine and every handle it has issued.
struct EngineShared {
    index: IndexKind,
    stats: EngineStats,
    plan: Option<PlanReport>,
    /// Sequence number for auto-seeded handles.
    handle_seq: AtomicU64,
}

/// A build-once / serve-many join-sampling service over one `(R, S, l)`
/// workload.
///
/// `Engine::build` (or [`Engine::auto`]) runs the chosen algorithm's
/// build phases exactly once into immutable, `Arc`-shared state; from
/// then on any number of threads obtain [`SamplerHandle`]s — each with
/// its own RNG and its own [`PhaseReport`] — and draw uniform join
/// samples concurrently with zero synchronisation on the hot path
/// (aggregate statistics are relaxed atomics).
///
/// `Engine` is `Clone` (it is a handle to shared state) and `Send +
/// Sync`; clone it into as many threads as needed, or share one
/// `Arc<Engine>`.
///
/// ```
/// use srj_engine::Engine;
/// use srj_core::SampleConfig;
/// use srj_geom::Point;
///
/// let r: Vec<Point> = (0..200).map(|i| Point::new((i % 20) as f64, (i / 20) as f64)).collect();
/// let s = r.clone();
/// let engine = Engine::auto(&r, &s, &SampleConfig::new(2.0));
///
/// let handles: Vec<_> = (0..4).map(|t| engine.handle_seeded(t)).collect();
/// for mut h in handles {
///     let pairs = h.sample(100).unwrap();
///     assert_eq!(pairs.len(), 100);
/// }
/// assert_eq!(engine.stats().samples, 400);
/// ```
#[derive(Clone)]
pub struct Engine {
    shared: Arc<EngineShared>,
}

const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Engine>();
};

impl Engine {
    /// Builds the index for `algorithm` once and wraps it for serving.
    pub fn build(r: &[Point], s: &[Point], config: &SampleConfig, algorithm: Algorithm) -> Engine {
        Engine::build_inner(r, s, config, algorithm, None)
    }

    /// Lets the planner pick the algorithm from a cheap `O(n + m)`
    /// workload estimate (see [`crate::planner`]), then builds —
    /// donating the planner's estimation grid to the index build, so
    /// the grid-mapping phase is never paid twice.
    ///
    /// The decision and its supporting estimates are kept in
    /// [`Engine::plan`].
    pub fn auto(r: &[Point], s: &[Point], config: &SampleConfig) -> Engine {
        let (report, estimation_grid) = plan(r, s, config);
        let index = match (report.algorithm, estimation_grid) {
            (Algorithm::KdsRejection, Some((grid, grid_time))) => {
                IndexKind::KdsRejection(Arc::new(KdsRejectionIndex::build_with_grid(
                    r, s, config, grid, grid_time,
                )))
            }
            (Algorithm::Bbst, Some((grid, grid_time))) => IndexKind::Bbst(Arc::new(
                BbstIndex::build_with_grid(r, config, grid, grid_time),
            )),
            (algorithm, _) => return Engine::build_inner(r, s, config, algorithm, Some(report)),
        };
        Engine {
            shared: Arc::new(EngineShared {
                index,
                stats: EngineStats::new(),
                plan: Some(report),
                handle_seq: AtomicU64::new(0),
            }),
        }
    }

    fn build_inner(
        r: &[Point],
        s: &[Point],
        config: &SampleConfig,
        algorithm: Algorithm,
        plan: Option<PlanReport>,
    ) -> Engine {
        let index = match algorithm {
            Algorithm::Kds => IndexKind::Kds(Arc::new(KdsIndex::build(r, s, config))),
            Algorithm::KdsRejection => {
                IndexKind::KdsRejection(Arc::new(KdsRejectionIndex::build(r, s, config)))
            }
            Algorithm::Bbst => IndexKind::Bbst(Arc::new(BbstIndex::build(r, s, config))),
        };
        Engine {
            shared: Arc::new(EngineShared {
                index,
                stats: EngineStats::new(),
                plan,
                handle_seq: AtomicU64::new(0),
            }),
        }
    }

    /// The algorithm this engine serves with.
    pub fn algorithm(&self) -> Algorithm {
        match &self.shared.index {
            IndexKind::Kds(_) => Algorithm::Kds,
            IndexKind::KdsRejection(_) => Algorithm::KdsRejection,
            IndexKind::Bbst(_) => Algorithm::Bbst,
        }
    }

    /// The planner's decision report, if this engine came from
    /// [`Engine::auto`].
    pub fn plan(&self) -> Option<&PlanReport> {
        self.shared.plan.as_ref()
    }

    /// A new serving handle with an automatically derived, per-handle
    /// unique seed. Deterministic: the k-th handle of an engine always
    /// gets the same seed.
    pub fn handle(&self) -> SamplerHandle {
        let seq = self.shared.handle_seq.fetch_add(1, Ordering::Relaxed);
        // SplitMix64 step keeps consecutive sequence numbers from
        // yielding correlated xoshiro seeds.
        let mut z = seq.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        self.handle_seeded(z ^ (z >> 31))
    }

    /// A new serving handle seeded with `seed`: two handles with the
    /// same seed over the same engine draw identical sample streams.
    pub fn handle_seeded(&self, seed: u64) -> SamplerHandle {
        let cursor = match &self.shared.index {
            IndexKind::Kds(ix) => CursorKind::Kds(KdsCursor::new(Arc::clone(ix))),
            IndexKind::KdsRejection(ix) => {
                CursorKind::KdsRejection(KdsRejectionCursor::new(Arc::clone(ix)))
            }
            IndexKind::Bbst(ix) => CursorKind::Bbst(BbstCursor::new(Arc::clone(ix))),
        };
        SamplerHandle {
            cursor,
            rng: SmallRng::seed_from_u64(seed),
            shared: Arc::clone(&self.shared),
        }
    }

    /// Aggregate statistics across every handle this engine has issued.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// Build-phase timing of the underlying index.
    pub fn build_report(&self) -> PhaseReport {
        match &self.shared.index {
            IndexKind::Kds(ix) => ix.build_report(),
            IndexKind::KdsRejection(ix) => ix.build_report(),
            IndexKind::Bbst(ix) => ix.build_report(),
        }
    }

    /// Approximate heap footprint of the shared index.
    pub fn memory_bytes(&self) -> usize {
        match &self.shared.index {
            IndexKind::Kds(ix) => ix.memory_bytes(),
            IndexKind::KdsRejection(ix) => ix.memory_bytes(),
            IndexKind::Bbst(ix) => ix.memory_bytes(),
        }
    }
}

/// Per-algorithm cursor, wrapped so a handle is one concrete type.
enum CursorKind {
    Kds(KdsCursor),
    KdsRejection(KdsRejectionCursor),
    Bbst(BbstCursor),
}

impl CursorKind {
    fn as_sampler(&mut self) -> &mut dyn JoinSampler {
        match self {
            CursorKind::Kds(c) => c,
            CursorKind::KdsRejection(c) => c,
            CursorKind::Bbst(c) => c,
        }
    }

    fn report(&self) -> PhaseReport {
        match self {
            CursorKind::Kds(c) => c.report(),
            CursorKind::KdsRejection(c) => c.report(),
            CursorKind::Bbst(c) => c.report(),
        }
    }
}

/// A lightweight per-thread serving handle: its own RNG, its own
/// cursor (scratch + [`PhaseReport`]), a shared immutable index.
///
/// Handles are `Send` (move one into each serving thread) but
/// deliberately not `Sync` — a handle is exactly the state that must
/// not be shared. Creation is O(1); create them freely.
pub struct SamplerHandle {
    cursor: CursorKind,
    rng: SmallRng,
    shared: Arc<EngineShared>,
}

const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<SamplerHandle>();
};

impl SamplerHandle {
    /// Draws one uniform join sample.
    pub fn sample_one(&mut self) -> Result<JoinPair, SampleError> {
        let t = Instant::now();
        let out = self.cursor.as_sampler().sample_one(&mut self.rng);
        match &out {
            Ok(_) => self.shared.stats.record_query(1, t.elapsed()),
            Err(_) => self.shared.stats.record_error(t.elapsed()),
        }
        out
    }

    /// Draws `t` uniform join samples with replacement.
    pub fn sample(&mut self, t: usize) -> Result<Vec<JoinPair>, SampleError> {
        let start = Instant::now();
        let out = self.cursor.as_sampler().sample(t, &mut self.rng);
        match &out {
            Ok(v) => self
                .shared
                .stats
                .record_query(v.len() as u64, start.elapsed()),
            Err(_) => self.shared.stats.record_error(start.elapsed()),
        }
        out
    }

    /// Progressive sampling: an iterator of uniform join samples that
    /// can be stopped at any point (the paper's `t = ∞` reading of
    /// Definition 2). Ends on the first error, which
    /// [`HandleStream::error`] exposes.
    ///
    /// Statistics: to keep shared atomics off the per-item path, a
    /// stream does **not** record one engine query per item — it
    /// accumulates the time spent **inside the draws** (consumer time
    /// between `next()` calls is excluded, so latency quantiles stay a
    /// serving-side signal) and flushes one aggregate query per
    /// [`STREAM_STATS_BATCH`] samples, plus the remainder when the
    /// stream is dropped.
    pub fn stream(&mut self) -> HandleStream<'_> {
        HandleStream {
            handle: self,
            error: None,
            batch_draw_time: Duration::ZERO,
            batch_samples: 0,
        }
    }

    /// This handle's phase report: the shared index's build phases plus
    /// this handle's own sampling statistics.
    pub fn report(&self) -> PhaseReport {
        self.cursor.report()
    }

    /// The algorithm behind this handle.
    pub fn algorithm(&self) -> Algorithm {
        match self.cursor {
            CursorKind::Kds(_) => Algorithm::Kds,
            CursorKind::KdsRejection(_) => Algorithm::KdsRejection,
            CursorKind::Bbst(_) => Algorithm::Bbst,
        }
    }
}

/// How many stream items are aggregated into one recorded engine
/// query (see [`SamplerHandle::stream`]).
pub const STREAM_STATS_BATCH: u64 = 256;

/// Iterator over a handle's progressive samples; see
/// [`SamplerHandle::stream`].
pub struct HandleStream<'a> {
    handle: &'a mut SamplerHandle,
    error: Option<SampleError>,
    /// Time spent inside draws since the last flush (consumer time
    /// between `next()` calls is deliberately excluded).
    batch_draw_time: Duration,
    batch_samples: u64,
}

impl HandleStream<'_> {
    /// The error that terminated the stream, if any.
    pub fn error(&self) -> Option<SampleError> {
        self.error
    }

    fn flush_stats(&mut self) {
        if self.batch_samples > 0 {
            self.handle
                .shared
                .stats
                .record_query(self.batch_samples, self.batch_draw_time);
            self.batch_samples = 0;
        }
        self.batch_draw_time = Duration::ZERO;
    }
}

impl Iterator for HandleStream<'_> {
    type Item = JoinPair;

    fn next(&mut self) -> Option<JoinPair> {
        if self.error.is_some() {
            return None;
        }
        let t = Instant::now();
        let drawn = self
            .handle
            .cursor
            .as_sampler()
            .sample_one(&mut self.handle.rng);
        let draw_time = t.elapsed();
        match drawn {
            Ok(p) => {
                self.batch_draw_time += draw_time;
                self.batch_samples += 1;
                if self.batch_samples >= STREAM_STATS_BATCH {
                    self.flush_stats();
                }
                Some(p)
            }
            Err(e) => {
                self.flush_stats();
                self.handle.shared.stats.record_error(draw_time);
                self.error = Some(e);
                None
            }
        }
    }
}

impl Drop for HandleStream<'_> {
    fn drop(&mut self) {
        self.flush_stats();
    }
}
