//! A versioned, mutable `(R, S)` point store — the source of truth the
//! epoch-swap machinery serves from.
//!
//! The paper's structures are static; the serving system makes the
//! *dataset* dynamic instead of the structures. A [`DatasetStore`]
//! holds an immutable **base snapshot** (`Arc`-shared with every index
//! built over it) plus a [`DeltaSet`] of pending mutations, and two
//! counters:
//!
//! * **version** — bumped on every mutation. Engines compare it to
//!   decide when to refresh their overlay snapshot.
//! * **epoch** — bumped on every [`DatasetStore::compact`] (full
//!   rebuild): the pending deltas are folded into a fresh base snapshot
//!   and **point ids are renumbered** (live base points first, in id
//!   order, then live inserted points, in insertion order). Sample
//!   pairs are therefore only meaningful relative to the epoch they
//!   were drawn in; [`DatasetSnapshot`] pins one epoch's view.
//!
//! Id assignment within an epoch is stable: base points keep
//! `0..base_len`, the `i`-th insert since the last compaction gets
//! `base_len + i`, and deletes tombstone ids without reuse.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

use srj_core::DeltaSet;
use srj_geom::{Point, PointId};
use srj_obs::journal::{event, EventKind};

/// One epoch's consistent view of a [`DatasetStore`]: the base arrays
/// (`Arc`-shared, never copied) plus a clone of the pending delta.
#[derive(Clone)]
pub struct DatasetSnapshot {
    /// Base `R` points of the epoch (ids `0..base_r_len`).
    pub base_r: Arc<Vec<Point>>,
    /// Base `S` points of the epoch.
    pub base_s: Arc<Vec<Point>>,
    /// **Dead** base `S` ids: tombstones folded by an incremental
    /// (cell-patch) compaction without renumbering. Dead points stay
    /// resolvable in `base_s` but are indexed by no structure and must
    /// never be sampled; a full [`DatasetStore::compact`] purges them.
    /// Empty unless incremental compactions ran this epoch chain.
    pub s_dead: Arc<HashSet<PointId>>,
    /// Mutations pending against the base at snapshot time.
    pub delta: DeltaSet,
    /// The epoch this snapshot belongs to.
    pub epoch: u64,
    /// The mutation version this snapshot reflects.
    pub version: u64,
}

/// The `S`-side of one incremental compaction
/// ([`DatasetStore::compact_incremental`]): exactly the arguments a
/// cell-granular `patch` needs, plus the identity of the base `S` the
/// delta was relative to (so an engine can verify its own `S`-side is
/// the patch's valid starting point — a sibling engine sharing the
/// store may have compacted in between).
pub struct SPatchDelta {
    /// The base `S` allocation the folded delta was relative to.
    pub prev_base_s: Arc<Vec<Point>>,
    /// `S` points appended by the compaction (ids continue from
    /// `prev_base_s.len()`, matching the delta's insert numbering).
    pub inserted: Vec<Point>,
    /// `S` ids tombstoned by the compaction (now dead in the base).
    pub deleted: HashSet<PointId>,
}

impl SPatchDelta {
    /// `true` iff the compaction changed `S` at all.
    pub fn s_changed(&self) -> bool {
        !self.inserted.is_empty() || !self.deleted.is_empty()
    }
}

impl DatasetSnapshot {
    /// Resolves `R` id `id` (base or inserted; live or tombstoned).
    pub fn r_point(&self, id: PointId) -> Option<Point> {
        self.delta.r_point(&self.base_r, id)
    }

    /// Resolves `S` id `id`.
    pub fn s_point(&self, id: PointId) -> Option<Point> {
        self.delta.s_point(&self.base_s, id)
    }

    /// Live `(id, point)` pairs of `R'` at this snapshot.
    pub fn live_r(&self) -> Vec<(PointId, Point)> {
        let mut out = Vec::with_capacity(self.delta.live_r_len());
        for (i, &p) in self.base_r.iter().enumerate() {
            let id = i as PointId;
            if !self.delta.r_deleted.contains(&id) {
                out.push((id, p));
            }
        }
        for (i, &p) in self.delta.r_inserted.iter().enumerate() {
            let id = (self.delta.base_r_len + i) as PointId;
            if !self.delta.r_deleted.contains(&id) {
                out.push((id, p));
            }
        }
        out
    }

    /// Live `(id, point)` pairs of `S'` at this snapshot (dead base ids
    /// excluded).
    pub fn live_s(&self) -> Vec<(PointId, Point)> {
        let mut out = Vec::with_capacity(self.delta.live_s_len());
        for (j, &p) in self.base_s.iter().enumerate() {
            let id = j as PointId;
            if !self.delta.s_deleted.contains(&id) && !self.s_dead.contains(&id) {
                out.push((id, p));
            }
        }
        for (j, &p) in self.delta.s_inserted.iter().enumerate() {
            let id = (self.delta.base_s_len + j) as PointId;
            if !self.delta.s_deleted.contains(&id) {
                out.push((id, p));
            }
        }
        out
    }
}

/// Outcome of a batch mutation, read atomically with the mutation
/// itself (one write lock covers the whole batch and the counters).
#[derive(Clone, Copy, Debug)]
pub struct BatchApplied {
    /// First id of the contiguous range assigned to an insert batch
    /// (`0` for deletes; the would-be next id for an empty insert).
    pub first_id: PointId,
    /// Operations that took effect.
    pub applied: u32,
    /// Epoch the batch landed in.
    pub epoch: u64,
    /// Version after the batch.
    pub version: u64,
}

struct StoreInner {
    base_r: Arc<Vec<Point>>,
    base_s: Arc<Vec<Point>>,
    /// Dead base `S` ids accumulated by incremental compactions (see
    /// [`DatasetSnapshot::s_dead`]); purged by a full compaction.
    s_dead: Arc<HashSet<PointId>>,
    delta: DeltaSet,
    epoch: u64,
    version: u64,
}

impl StoreInner {
    fn snapshot(&self) -> DatasetSnapshot {
        DatasetSnapshot {
            base_r: Arc::clone(&self.base_r),
            base_s: Arc::clone(&self.base_s),
            s_dead: Arc::clone(&self.s_dead),
            delta: self.delta.clone(),
            epoch: self.epoch,
            version: self.version,
        }
    }
}

/// A thread-safe, mutable `(R, S)` dataset with epoch-based
/// compaction. Mutations are O(1) buffer appends / tombstones under a
/// short write lock; readers take consistent [`DatasetSnapshot`]s.
/// `EpochEngine` layers the serving side (overlay snapshots, rebuild
/// threshold, planner feedback) on top.
pub struct DatasetStore {
    inner: RwLock<StoreInner>,
    /// Observability label: the registered dataset id this store
    /// serves, carried on every lifecycle event it (and the engines
    /// over it) emits. `u64::MAX` = unlabelled.
    obs_label: AtomicU64,
}

/// Sentinel for "no observability label set".
const NO_LABEL: u64 = u64::MAX;

impl DatasetStore {
    /// A store whose first epoch's base snapshot is `(r, s)`.
    pub fn new(r: Vec<Point>, s: Vec<Point>) -> Self {
        let delta = DeltaSet::for_base(r.len(), s.len());
        DatasetStore {
            inner: RwLock::new(StoreInner {
                base_r: Arc::new(r),
                base_s: Arc::new(s),
                s_dead: Arc::new(HashSet::new()),
                delta,
                epoch: 0,
                version: 0,
            }),
            obs_label: AtomicU64::new(NO_LABEL),
        }
    }

    /// Labels this store with the dataset id it serves; lifecycle
    /// events emitted for the store (compactions, epoch swaps of
    /// engines over it) carry the label so the journal can be
    /// filtered per dataset. `u64::MAX` is reserved as "unlabelled".
    pub fn set_obs_label(&self, dataset: u64) {
        self.obs_label.store(dataset, Ordering::Relaxed);
    }

    /// The observability label, if one was set.
    pub fn obs_label(&self) -> Option<u64> {
        match self.obs_label.load(Ordering::Relaxed) {
            NO_LABEL => None,
            d => Some(d),
        }
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, StoreInner> {
        self.inner.read().expect("dataset store poisoned")
    }

    fn write(&self) -> std::sync::RwLockWriteGuard<'_, StoreInner> {
        self.inner.write().expect("dataset store poisoned")
    }

    /// Current epoch (bumped by [`DatasetStore::compact`]).
    pub fn epoch(&self) -> u64 {
        self.read().epoch
    }

    /// Current mutation version (bumped by every insert/delete and by
    /// compaction).
    pub fn version(&self) -> u64 {
        self.read().version
    }

    /// Live `|R'|`.
    pub fn live_r_len(&self) -> usize {
        self.read().delta.live_r_len()
    }

    /// Live `|S'|` (dead base ids excluded).
    pub fn live_s_len(&self) -> usize {
        let inner = self.read();
        inner.delta.live_s_len() - inner.s_dead.len()
    }

    /// Dead base `S` ids (folded tombstones awaiting a full
    /// compaction; see [`DatasetSnapshot::s_dead`]).
    pub fn s_dead_len(&self) -> usize {
        self.read().s_dead.len()
    }

    /// Pending mutation count (inserts + tombstones since the last
    /// compaction).
    pub fn pending_ops(&self) -> usize {
        self.read().delta.pending_ops()
    }

    /// Pending mutations as a fraction of the base snapshot size — the
    /// quantity `EpochEngine` compares against its rebuild threshold.
    pub fn delta_fraction(&self) -> f64 {
        let inner = self.read();
        let base = (inner.delta.base_r_len + inner.delta.base_s_len).max(1);
        inner.delta.pending_ops() as f64 / base as f64
    }

    /// Pending **tombstones** (deletes only) as a fraction of the base
    /// snapshot size. Tracked separately from [`delta_fraction`] so a
    /// tombstone-heavy delta can force a (now-cheap, cell-granular)
    /// rebuild that actually shrinks `Σµ` even while the total pending
    /// fraction is still below the general rebuild threshold.
    ///
    /// [`delta_fraction`]: DatasetStore::delta_fraction
    pub fn tombstone_fraction(&self) -> f64 {
        let inner = self.read();
        let base = (inner.delta.base_r_len + inner.delta.base_s_len).max(1);
        inner.delta.tombstone_ops() as f64 / base as f64
    }

    /// A consistent view of the current epoch (base arrays `Arc`-shared,
    /// delta cloned).
    pub fn snapshot(&self) -> DatasetSnapshot {
        self.read().snapshot()
    }

    /// Inserts an `R` point, returning its id (stable until the next
    /// compaction renumbers ids).
    pub fn insert_r(&self, p: Point) -> PointId {
        let mut inner = self.write();
        let id = (inner.delta.base_r_len + inner.delta.r_inserted.len()) as PointId;
        inner.delta.r_inserted.push(p);
        inner.version += 1;
        id
    }

    /// Inserts an `S` point, returning its id.
    pub fn insert_s(&self, p: Point) -> PointId {
        let mut inner = self.write();
        let id = (inner.delta.base_s_len + inner.delta.s_inserted.len()) as PointId;
        inner.delta.s_inserted.push(p);
        inner.version += 1;
        id
    }

    /// Tombstones `R` id `id`; `false` if the id is unknown or already
    /// deleted (no version bump then).
    pub fn delete_r(&self, id: PointId) -> bool {
        let mut inner = self.write();
        if (id as usize) >= inner.delta.base_r_len + inner.delta.r_inserted.len()
            || !inner.delta.r_deleted.insert(id)
        {
            return false;
        }
        inner.version += 1;
        true
    }

    /// Tombstones `S` id `id`; `false` if unknown, already deleted, or
    /// dead from an earlier incremental compaction.
    pub fn delete_s(&self, id: PointId) -> bool {
        let mut inner = self.write();
        if (id as usize) >= inner.delta.base_s_len + inner.delta.s_inserted.len()
            || inner.s_dead.contains(&id)
            || !inner.delta.s_deleted.insert(id)
        {
            return false;
        }
        inner.version += 1;
        true
    }

    /// Inserts a whole batch of `R` points under **one** write lock,
    /// returning the contiguous id range start and the epoch/version
    /// the batch landed in. Per-point [`DatasetStore::insert_r`] calls
    /// cannot promise contiguity under concurrency (another writer —
    /// or a compaction — may interleave), and the network `UPDATE`
    /// frame's `first_id + k` contract depends on it.
    ///
    /// An empty batch reports the would-be next id and the current
    /// counters without bumping anything.
    pub fn insert_r_batch(&self, points: &[Point]) -> BatchApplied {
        let mut inner = self.write();
        let first_id = (inner.delta.base_r_len + inner.delta.r_inserted.len()) as PointId;
        inner.delta.r_inserted.extend_from_slice(points);
        if !points.is_empty() {
            inner.version += 1;
        }
        BatchApplied {
            first_id,
            applied: points.len() as u32,
            epoch: inner.epoch,
            version: inner.version,
        }
    }

    /// Batch [`DatasetStore::insert_s`]; see
    /// [`DatasetStore::insert_r_batch`] for the atomicity contract.
    pub fn insert_s_batch(&self, points: &[Point]) -> BatchApplied {
        let mut inner = self.write();
        let first_id = (inner.delta.base_s_len + inner.delta.s_inserted.len()) as PointId;
        inner.delta.s_inserted.extend_from_slice(points);
        if !points.is_empty() {
            inner.version += 1;
        }
        BatchApplied {
            first_id,
            applied: points.len() as u32,
            epoch: inner.epoch,
            version: inner.version,
        }
    }

    /// Tombstones a batch of `R` ids under one write lock (unknown and
    /// already-deleted ids are skipped — `applied` counts the ones
    /// that took effect), with the epoch/version read atomically with
    /// the mutation.
    pub fn delete_r_batch(&self, ids: &[PointId]) -> BatchApplied {
        let mut inner = self.write();
        let known = inner.delta.base_r_len + inner.delta.r_inserted.len();
        let mut applied = 0u32;
        for &id in ids {
            if (id as usize) < known && inner.delta.r_deleted.insert(id) {
                applied += 1;
            }
        }
        if applied > 0 {
            inner.version += 1;
        }
        BatchApplied {
            first_id: 0,
            applied,
            epoch: inner.epoch,
            version: inner.version,
        }
    }

    /// Batch [`DatasetStore::delete_s`]; see
    /// [`DatasetStore::delete_r_batch`].
    pub fn delete_s_batch(&self, ids: &[PointId]) -> BatchApplied {
        let mut inner = self.write();
        let known = inner.delta.base_s_len + inner.delta.s_inserted.len();
        let mut applied = 0u32;
        for &id in ids {
            if (id as usize) < known
                && !inner.s_dead.contains(&id)
                && inner.delta.s_deleted.insert(id)
            {
                applied += 1;
            }
        }
        if applied > 0 {
            inner.version += 1;
        }
        BatchApplied {
            first_id: 0,
            applied,
            epoch: inner.epoch,
            version: inner.version,
        }
    }

    /// Folds the pending delta into a fresh base snapshot, bumping the
    /// epoch and **renumbering ids** (live base points first, then live
    /// inserts); dead ids left behind by incremental compactions are
    /// purged too. No-op — and no epoch bump — when nothing is pending
    /// and nothing is dead. Returns the snapshot engines should rebuild
    /// from, and whether `S` changed (an unchanged `S` lets the rebuild
    /// reuse the previous epoch's `Arc`-shared `S`-side structures).
    pub fn compact(&self) -> (DatasetSnapshot, bool) {
        let t0 = Instant::now();
        let mut inner = self.write();
        if inner.delta.is_empty() && inner.s_dead.is_empty() {
            return (inner.snapshot(), false);
        }
        let s_changed = !inner.delta.s_inserted.is_empty()
            || !inner.delta.s_deleted.is_empty()
            || !inner.s_dead.is_empty();
        let new_r = Self::fold_r(&inner);
        let new_s: Arc<Vec<Point>> = if s_changed {
            let mut v = Vec::with_capacity(inner.delta.live_s_len() - inner.s_dead.len());
            for (j, &p) in inner.base_s.iter().enumerate() {
                let id = j as PointId;
                if !inner.delta.s_deleted.contains(&id) && !inner.s_dead.contains(&id) {
                    v.push(p);
                }
            }
            for (j, &p) in inner.delta.s_inserted.iter().enumerate() {
                if !inner
                    .delta
                    .s_deleted
                    .contains(&((inner.delta.base_s_len + j) as PointId))
                {
                    v.push(p);
                }
            }
            Arc::new(v)
        } else {
            // S untouched: the new epoch shares the very same allocation.
            Arc::clone(&inner.base_s)
        };
        inner.base_r = Arc::new(new_r);
        inner.base_s = new_s;
        inner.s_dead = Arc::new(HashSet::new());
        inner.delta = DeltaSet::for_base(inner.base_r.len(), inner.base_s.len());
        inner.epoch += 1;
        inner.version += 1;
        let result = (inner.snapshot(), s_changed);
        let epoch = inner.epoch;
        drop(inner);
        event(EventKind::Compaction)
            .dataset(self.obs_label())
            .epoch(epoch)
            .duration_ns(t0.elapsed().as_nanos() as u64)
            .emit();
        result
    }

    /// Folds the pending delta **without renumbering `S`**: the
    /// cell-patch compaction. `R` is folded and renumbered as usual
    /// (the `R`-side index is rebuilt wholesale on every major swap
    /// anyway), but `S` keeps stable ids — pending inserts are appended
    /// (their delta ids carry over exactly) and pending deletes become
    /// *dead* base ids ([`DatasetSnapshot::s_dead`]). The returned
    /// [`SPatchDelta`] is precisely what a cell-granular `patch` of the
    /// previous epoch's `S`-side structures needs; its `prev_base_s`
    /// lets the engine verify the patch applies to the `S` allocation
    /// it actually built over.
    ///
    /// Bumps the epoch (ids of `R` renumber; `S` ids survive). No-op
    /// when nothing is pending.
    pub fn compact_incremental(&self) -> (DatasetSnapshot, SPatchDelta) {
        let t0 = Instant::now();
        let mut inner = self.write();
        let prev_base_s = Arc::clone(&inner.base_s);
        if inner.delta.is_empty() {
            let patch = SPatchDelta {
                prev_base_s,
                inserted: Vec::new(),
                deleted: HashSet::new(),
            };
            return (inner.snapshot(), patch);
        }
        let new_r = Self::fold_r(&inner);
        let s_inserted = std::mem::take(&mut inner.delta.s_inserted);
        let s_deleted = std::mem::take(&mut inner.delta.s_deleted);
        let new_s: Arc<Vec<Point>> = if s_inserted.is_empty() {
            Arc::clone(&inner.base_s)
        } else {
            let mut v = Vec::with_capacity(inner.base_s.len() + s_inserted.len());
            v.extend_from_slice(&inner.base_s);
            v.extend_from_slice(&s_inserted);
            Arc::new(v)
        };
        if !s_deleted.is_empty() {
            let mut dead = (*inner.s_dead).clone();
            dead.extend(s_deleted.iter().copied());
            inner.s_dead = Arc::new(dead);
        }
        inner.base_r = Arc::new(new_r);
        inner.base_s = new_s;
        inner.delta = DeltaSet::for_base(inner.base_r.len(), inner.base_s.len());
        inner.epoch += 1;
        inner.version += 1;
        let patch = SPatchDelta {
            prev_base_s,
            inserted: s_inserted,
            deleted: s_deleted,
        };
        let result = (inner.snapshot(), patch);
        let epoch = inner.epoch;
        drop(inner);
        event(EventKind::Compaction)
            .dataset(self.obs_label())
            .epoch(epoch)
            .duration_ns(t0.elapsed().as_nanos() as u64)
            .emit();
        result
    }

    /// Live `R` fold: base survivors in id order, then live inserts.
    fn fold_r(inner: &StoreInner) -> Vec<Point> {
        let mut v = Vec::with_capacity(inner.delta.live_r_len());
        for (i, &p) in inner.base_r.iter().enumerate() {
            if !inner.delta.r_deleted.contains(&(i as PointId)) {
                v.push(p);
            }
        }
        for (i, &p) in inner.delta.r_inserted.iter().enumerate() {
            if !inner
                .delta
                .r_deleted
                .contains(&((inner.delta.base_r_len + i) as PointId))
            {
                v.push(p);
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn ids_are_stable_within_an_epoch() {
        let store = DatasetStore::new(vec![p(0.0, 0.0), p(1.0, 1.0)], vec![p(5.0, 5.0)]);
        assert_eq!(store.insert_r(p(2.0, 2.0)), 2);
        assert_eq!(store.insert_r(p(3.0, 3.0)), 3);
        assert_eq!(store.insert_s(p(6.0, 6.0)), 1);
        assert!(store.delete_r(0));
        assert!(!store.delete_r(0), "double delete refused");
        assert!(!store.delete_r(99), "unknown id refused");
        assert_eq!(store.version(), 4);
        assert_eq!(store.epoch(), 0);
        assert_eq!(store.live_r_len(), 3);
        let snap = store.snapshot();
        assert_eq!(snap.r_point(3), Some(p(3.0, 3.0)));
        assert_eq!(snap.r_point(0), Some(p(0.0, 0.0)), "tombstoned resolves");
        assert!(!snap.delta.is_r_live(0));
        assert_eq!(snap.live_r().len(), 3);
    }

    #[test]
    fn compact_folds_deltas_and_renumbers() {
        let store = DatasetStore::new(vec![p(0.0, 0.0), p(1.0, 1.0), p(2.0, 2.0)], vec![]);
        store.insert_r(p(3.0, 3.0));
        store.delete_r(1);
        let (snap, s_changed) = store.compact();
        assert!(!s_changed, "S never mutated");
        assert_eq!(snap.epoch, 1);
        assert_eq!(store.epoch(), 1);
        assert_eq!(
            snap.base_r.as_slice(),
            &[p(0.0, 0.0), p(2.0, 2.0), p(3.0, 3.0)]
        );
        assert!(snap.delta.is_empty());
        // next insert continues from the compacted length
        assert_eq!(store.insert_r(p(9.0, 9.0)), 3);
    }

    #[test]
    fn compact_is_a_noop_when_clean() {
        let store = DatasetStore::new(vec![p(0.0, 0.0)], vec![p(1.0, 1.0)]);
        let (snap, s_changed) = store.compact();
        assert_eq!(snap.epoch, 0);
        assert_eq!(store.epoch(), 0);
        assert!(!s_changed);
    }

    #[test]
    fn unchanged_s_shares_the_allocation_across_epochs() {
        let store = DatasetStore::new(vec![p(0.0, 0.0)], vec![p(1.0, 1.0)]);
        let before = store.snapshot();
        store.insert_r(p(2.0, 2.0));
        let (after, s_changed) = store.compact();
        assert!(!s_changed);
        assert!(Arc::ptr_eq(&before.base_s, &after.base_s));
        assert!(!Arc::ptr_eq(&before.base_r, &after.base_r));
    }

    #[test]
    fn batch_mutations_are_atomic_and_contiguous() {
        // Interleaved writers: every batch must still get a contiguous
        // id range, disjoint from every other batch (the wire UPDATE
        // frame's first_id + k contract).
        let store = Arc::new(DatasetStore::new(Vec::new(), Vec::new()));
        let ranges: Vec<(u32, u32)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|w| {
                    let store = Arc::clone(&store);
                    scope.spawn(move || {
                        let mut out = Vec::new();
                        for b in 0..50 {
                            let pts = vec![p(w as f64, b as f64); 16];
                            let applied = store.insert_r_batch(&pts);
                            assert_eq!(applied.applied, 16);
                            out.push((applied.first_id, applied.applied));
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        let mut covered = vec![false; 4 * 50 * 16];
        for (first, applied) in ranges {
            for id in first..first + applied {
                assert!(!covered[id as usize], "id {id} claimed twice");
                covered[id as usize] = true;
            }
        }
        assert!(covered.iter().all(|&c| c), "id space has holes");
        // one version bump per batch, not per point
        assert_eq!(store.version(), 4 * 50);
        // empty batches bump nothing and report the next id
        let v = store.version();
        let applied = store.insert_s_batch(&[]);
        assert_eq!((applied.first_id, applied.applied), (0, 0));
        assert_eq!(store.version(), v);
        // batch deletes: applied counts only effective tombstones
        let applied = store.delete_r_batch(&[0, 1, 0, 999_999]);
        assert_eq!(applied.applied, 2);
        assert_eq!(store.live_r_len(), 4 * 50 * 16 - 2);
    }

    #[test]
    fn incremental_compaction_keeps_s_ids_stable() {
        let store = DatasetStore::new(
            vec![p(0.0, 0.0), p(1.0, 1.0)],
            vec![p(10.0, 10.0), p(11.0, 11.0), p(12.0, 12.0)],
        );
        let sid = store.insert_s(p(13.0, 13.0));
        assert_eq!(sid, 3);
        assert!(store.delete_s(1));
        store.insert_r(p(2.0, 2.0));
        assert!(store.delete_r(0));

        let before = store.snapshot();
        let (snap, patch) = store.compact_incremental();
        assert_eq!(snap.epoch, 1);
        assert!(patch.s_changed());
        assert!(Arc::ptr_eq(&patch.prev_base_s, &before.base_s));
        assert_eq!(patch.inserted, vec![p(13.0, 13.0)]);
        assert!(patch.deleted.contains(&1));

        // R renumbered (live base then live inserts)…
        assert_eq!(snap.base_r.as_slice(), &[p(1.0, 1.0), p(2.0, 2.0)]);
        // …but S appended with stable ids: id 3 still resolves to the
        // inserted point, id 1 is dead but still resolvable.
        assert_eq!(snap.base_s.as_slice()[3], p(13.0, 13.0));
        assert_eq!(snap.base_s.as_slice()[1], p(11.0, 11.0));
        assert!(snap.s_dead.contains(&1));
        assert_eq!(store.live_s_len(), 3);
        assert_eq!(store.s_dead_len(), 1);
        assert_eq!(snap.live_s().len(), 3);
        assert!(snap.live_s().iter().all(|&(id, _)| id != 1));

        // A dead id can never be deleted again.
        assert!(!store.delete_s(1));
        let applied = store.delete_s_batch(&[1, 2]);
        assert_eq!(applied.applied, 1);

        // A later *full* compaction purges the dead ids and renumbers.
        let (snap2, s_changed) = store.compact();
        assert!(s_changed);
        assert_eq!(snap2.base_s.len(), 2); // ids {0,1,2,3} − dead 1 − deleted 2
        assert!(snap2.s_dead.is_empty());
        assert_eq!(store.s_dead_len(), 0);
    }

    #[test]
    fn incremental_compaction_with_r_only_delta_shares_s() {
        let store = DatasetStore::new(vec![p(0.0, 0.0)], vec![p(1.0, 1.0)]);
        store.insert_r(p(2.0, 2.0));
        let before = store.snapshot();
        let (snap, patch) = store.compact_incremental();
        assert!(!patch.s_changed());
        assert!(Arc::ptr_eq(&before.base_s, &snap.base_s));
        assert_eq!(snap.epoch, 1);
        assert_eq!(store.live_r_len(), 2);
    }

    #[test]
    fn full_compaction_purges_dead_even_with_empty_delta() {
        let store = DatasetStore::new(Vec::new(), vec![p(0.0, 0.0), p(1.0, 1.0)]);
        store.delete_s(0);
        store.compact_incremental();
        assert_eq!(store.s_dead_len(), 1);
        assert_eq!(store.pending_ops(), 0);
        // Delta is empty, but the dead id still forces a purge.
        let (snap, s_changed) = store.compact();
        assert!(s_changed);
        assert_eq!(snap.base_s.as_slice(), &[p(1.0, 1.0)]);
        assert_eq!(snap.epoch, 2);
    }

    #[test]
    fn tombstone_fraction_counts_deletes_only() {
        let store = DatasetStore::new(vec![p(0.0, 0.0); 10], vec![p(0.0, 0.0); 10]);
        store.insert_r(p(1.0, 1.0));
        store.insert_s(p(2.0, 2.0));
        assert_eq!(store.tombstone_fraction(), 0.0);
        store.delete_r(0);
        store.delete_s(0);
        assert!((store.tombstone_fraction() - 0.1).abs() < 1e-12);
        assert!((store.delta_fraction() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn delta_fraction_tracks_pending_ops() {
        let store = DatasetStore::new(vec![p(0.0, 0.0); 10], vec![p(0.0, 0.0); 10]);
        assert_eq!(store.delta_fraction(), 0.0);
        store.insert_s(p(1.0, 1.0));
        store.delete_s(0);
        assert!((store.delta_fraction() - 0.1).abs() < 1e-12);
        store.compact();
        assert_eq!(store.delta_fraction(), 0.0);
    }
}
