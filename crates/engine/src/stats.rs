//! Lock-free aggregate query statistics for an [`crate::Engine`].
//!
//! Every handle records each query (one `sample_one` or one batched
//! `sample(t)` call) into the engine's shared [`EngineStats`]:
//! a query counter, a sample counter, an error counter, and a
//! log₂-bucketed latency histogram. Everything is plain relaxed atomics
//! — recording is a handful of `fetch_add`s, so the serving hot path
//! never takes a lock — and quantiles are answered from the histogram
//! (bucket-resolution accurate, i.e. within a factor of 2, which is the
//! standard trade-off for serving-side p99 tracking).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of log₂ latency buckets: bucket `i` holds latencies in
/// `[2^i, 2^(i+1))` nanoseconds; bucket 63 is the overflow bucket.
const BUCKETS: usize = 64;

/// Shared, lock-free statistics aggregated across every handle of an
/// engine.
#[derive(Debug)]
pub struct EngineStats {
    queries: AtomicU64,
    samples: AtomicU64,
    iterations: AtomicU64,
    errors: AtomicU64,
    latency_ns_total: AtomicU64,
    latency_buckets: [AtomicU64; BUCKETS],
}

impl Default for EngineStats {
    fn default() -> Self {
        Self::new()
    }
}

impl EngineStats {
    /// Fresh zeroed statistics.
    pub fn new() -> Self {
        EngineStats {
            queries: AtomicU64::new(0),
            samples: AtomicU64::new(0),
            iterations: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            latency_ns_total: AtomicU64::new(0),
            latency_buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Records one query that produced `samples` accepted samples in
    /// `iterations` sampling-loop iterations (`≥ samples`; the excess
    /// is rejections) taking `latency`.
    pub fn record_query(&self, samples: u64, iterations: u64, latency: Duration) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.samples.fetch_add(samples, Ordering::Relaxed);
        self.iterations.fetch_add(iterations, Ordering::Relaxed);
        let ns = latency.as_nanos().min(u128::from(u64::MAX)) as u64;
        self.latency_ns_total.fetch_add(ns, Ordering::Relaxed);
        let bucket = if ns == 0 {
            0
        } else {
            63 - ns.leading_zeros() as usize
        };
        self.latency_buckets[bucket.min(BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
    }

    /// Records one failed query (latency and any iterations spent are
    /// still charged).
    pub fn record_error(&self, iterations: u64, latency: Duration) {
        self.errors.fetch_add(1, Ordering::Relaxed);
        self.record_query(0, iterations, latency);
    }

    /// Just `(samples, iterations)` as two relaxed loads — the
    /// rejection-rate feedback pair, cheap enough for a per-request
    /// check (a full [`EngineStats::snapshot`] walks the latency
    /// histogram and computes quantiles).
    pub fn sample_counters(&self) -> (u64, u64) {
        (
            self.samples.load(Ordering::Relaxed),
            self.iterations.load(Ordering::Relaxed),
        )
    }

    /// A point-in-time copy of every counter and derived quantile.
    pub fn snapshot(&self) -> StatsSnapshot {
        let buckets: Vec<u64> = self
            .latency_buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let queries = self.queries.load(Ordering::Relaxed);
        let total_ns = self.latency_ns_total.load(Ordering::Relaxed);
        StatsSnapshot {
            queries,
            samples: self.samples.load(Ordering::Relaxed),
            iterations: self.iterations.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            mean_latency: Duration::from_nanos(total_ns.checked_div(queries).unwrap_or(0)),
            p50_latency: quantile(&buckets, 0.50),
            p99_latency: quantile(&buckets, 0.99),
        }
    }
}

/// Bucket-resolution quantile: the geometric midpoint of the bucket
/// containing the q-th ranked observation.
fn quantile(buckets: &[u64], q: f64) -> Duration {
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return Duration::ZERO;
    }
    // Rank so that quantile q covers the slowest (1−q) fraction: with
    // 100 observations, p99 is the 100th-ranked (max), p50 the 51st.
    let rank = ((total as f64 * q).floor() as u64 + 1).clamp(1, total);
    let mut seen = 0u64;
    for (i, &count) in buckets.iter().enumerate() {
        seen += count;
        if seen >= rank {
            // Bucket i spans [2^i, 2^(i+1)); report its geometric mean.
            let lo = 1u64 << i;
            return Duration::from_nanos((lo as f64 * std::f64::consts::SQRT_2) as u64);
        }
    }
    Duration::ZERO
}

/// Shared, lock-free per-`S`-cell rejection counters — the
/// per-region feedback signal behind targeted cell repairs. One slot
/// per grid cell of the engine's `S`-side; handles drain their
/// cursors' rejection records here with relaxed adds, so the hot path
/// stays lock-free.
#[derive(Debug)]
pub struct CellRejectionStats {
    counters: Vec<AtomicU64>,
}

impl CellRejectionStats {
    /// Zeroed counters for `cells` cell slots.
    pub fn new(cells: usize) -> Self {
        CellRejectionStats {
            counters: (0..cells).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Number of cell slots tracked.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// Whether any slots are tracked.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// Records one rejected iteration attributed to `slot` (ignores
    /// out-of-range slots defensively).
    pub fn record(&self, slot: u32) {
        if let Some(c) = self.counters.get(slot as usize) {
            c.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a drained batch of per-rejection slot entries.
    pub fn record_all(&self, slots: impl Iterator<Item = u32>) {
        for slot in slots {
            self.record(slot);
        }
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> Vec<u64> {
        self.counters
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }
}

/// A point-in-time view of an engine's aggregate statistics.
#[derive(Clone, Copy, Debug)]
pub struct StatsSnapshot {
    /// Queries served (each `sample_one` / batched `sample` call).
    pub queries: u64,
    /// Join samples drawn across all queries.
    pub samples: u64,
    /// Sampling-loop iterations across all queries, rejections
    /// included (`≥ samples`).
    pub iterations: u64,
    /// Queries that returned a [`srj_core::SampleError`].
    pub errors: u64,
    /// Mean per-query latency.
    pub mean_latency: Duration,
    /// Median per-query latency (bucket resolution).
    pub p50_latency: Duration,
    /// 99th-percentile per-query latency (bucket resolution).
    pub p99_latency: Duration,
}

impl StatsSnapshot {
    /// Observed rejection overhead across every handle:
    /// `iterations / samples` — the serving-time measurement of the
    /// planner's `Σµ/|J|` estimate (`1.0` = no rejections). `None`
    /// before the first accepted sample. This is the feedback signal a
    /// later PR will use to re-plan when the build-time estimate was
    /// wrong.
    pub fn rejection_rate(&self) -> Option<f64> {
        (self.samples > 0).then(|| self.iterations as f64 / self.samples as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let stats = EngineStats::new();
        stats.record_query(10, 15, Duration::from_micros(5));
        stats.record_query(20, 28, Duration::from_micros(50));
        stats.record_error(7, Duration::from_micros(1));
        let snap = stats.snapshot();
        assert_eq!(snap.queries, 3);
        assert_eq!(snap.samples, 30);
        assert_eq!(snap.iterations, 50);
        assert_eq!(snap.errors, 1);
        assert!(snap.mean_latency > Duration::ZERO);
    }

    #[test]
    fn rejection_rate_is_iterations_over_samples() {
        let stats = EngineStats::new();
        assert_eq!(stats.snapshot().rejection_rate(), None);
        // 100 accepted samples over 250 iterations ⇒ overhead 2.5
        stats.record_query(40, 100, Duration::from_micros(5));
        stats.record_query(60, 150, Duration::from_micros(5));
        let rate = stats.snapshot().rejection_rate().unwrap();
        assert!((rate - 2.5).abs() < 1e-12, "rate = {rate}");
        // an error that burned iterations still counts toward overhead
        stats.record_error(50, Duration::from_micros(1));
        let rate = stats.snapshot().rejection_rate().unwrap();
        assert!((rate - 3.0).abs() < 1e-12, "rate = {rate}");
    }

    #[test]
    fn quantiles_are_bucket_accurate() {
        let stats = EngineStats::new();
        // 99 fast queries at ~1µs, one slow at ~1ms.
        for _ in 0..99 {
            stats.record_query(1, 1, Duration::from_micros(1));
        }
        stats.record_query(1, 1, Duration::from_millis(1));
        let snap = stats.snapshot();
        // p50 must sit in the microsecond bucket (within 2x).
        assert!(snap.p50_latency < Duration::from_micros(4), "{snap:?}");
        // p99 lands in one of the two top buckets depending on rank
        // rounding; it must be far above p50.
        assert!(snap.p99_latency > snap.p50_latency * 50, "{snap:?}");
    }

    #[test]
    fn empty_snapshot_is_zero() {
        let snap = EngineStats::new().snapshot();
        assert_eq!(snap.queries, 0);
        assert_eq!(snap.p50_latency, Duration::ZERO);
        assert_eq!(snap.p99_latency, Duration::ZERO);
    }
}
