//! Lock-free aggregate query statistics for an [`crate::Engine`].
//!
//! Every handle records each query (one `sample_one` or one batched
//! `sample(t)` call) into the engine's shared [`EngineStats`]:
//! a query counter, a sample counter, an error counter, and a
//! log₂-bucketed latency histogram. The primitives are the
//! [`srj_obs`] metrics cells — plain relaxed atomics, so recording is
//! a handful of `fetch_add`s and the serving hot path never takes a
//! lock — and quantiles are answered from the histogram
//! (bucket-resolution accurate, i.e. within a factor of 2, which is
//! the standard trade-off for serving-side p99 tracking).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use srj_obs::{Counter, Histogram};

/// Shared, lock-free statistics aggregated across every handle of an
/// engine.
#[derive(Debug, Default)]
pub struct EngineStats {
    queries: Counter,
    samples: Counter,
    iterations: Counter,
    errors: Counter,
    latency: Histogram,
    buffer_hits: Counter,
    buffer_refills: Counter,
    buffer_invalidations: Counter,
}

impl EngineStats {
    /// Fresh zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one query that produced `samples` accepted samples in
    /// `iterations` sampling-loop iterations (`≥ samples`; the excess
    /// is rejections) taking `latency`.
    pub fn record_query(&self, samples: u64, iterations: u64, latency: Duration) {
        self.queries.inc();
        self.samples.add(samples);
        self.iterations.add(iterations);
        self.latency.observe_duration(latency);
    }

    /// Records one failed query (latency and any iterations spent are
    /// still charged).
    pub fn record_error(&self, iterations: u64, latency: Duration) {
        self.errors.inc();
        self.record_query(0, iterations, latency);
    }

    /// Just `(samples, iterations)` as two relaxed loads — the
    /// rejection-rate feedback pair, cheap enough for a per-request
    /// check (a full [`EngineStats::snapshot`] walks the latency
    /// histogram and computes quantiles).
    pub fn sample_counters(&self) -> (u64, u64) {
        (self.samples.get(), self.iterations.get())
    }

    /// A shared handle to the latency histogram — for export layers
    /// (the server's `METRICS` frame) that want the raw buckets
    /// without re-binning.
    pub fn latency_histogram(&self) -> Histogram {
        self.latency.clone()
    }

    /// Folds a drained per-cursor [`srj_core::BufferStats`] delta into
    /// the shared buffer counters. Handles call this once per batch,
    /// so the hot path pays three relaxed adds at most.
    pub fn record_buffer_stats(&self, delta: srj_core::BufferStats) {
        self.buffer_hits.add(delta.hits);
        self.buffer_refills.add(delta.refills);
        self.buffer_invalidations.add(delta.invalidations);
    }

    /// Records `n` buffer invalidations attributed to an epoch event
    /// (a swap or cell patch retiring pinned buffers) rather than a
    /// cursor-observed token mismatch.
    pub fn record_buffer_invalidations(&self, n: u64) {
        self.buffer_invalidations.add(n);
    }

    /// `(hits, refills, invalidations)` of the buffered draw fast path
    /// as three relaxed loads — for export layers mirroring the
    /// counters into scrape-time metrics.
    pub fn buffer_counters(&self) -> (u64, u64, u64) {
        (
            self.buffer_hits.get(),
            self.buffer_refills.get(),
            self.buffer_invalidations.get(),
        )
    }

    /// A point-in-time copy of every counter and derived quantile.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            queries: self.queries.get(),
            samples: self.samples.get(),
            iterations: self.iterations.get(),
            errors: self.errors.get(),
            mean_latency: Duration::from_nanos(self.latency.mean()),
            p50_latency: Duration::from_nanos(self.latency.quantile(0.50)),
            p99_latency: Duration::from_nanos(self.latency.quantile(0.99)),
            buffer_hits: self.buffer_hits.get(),
            buffer_refills: self.buffer_refills.get(),
            buffer_invalidations: self.buffer_invalidations.get(),
        }
    }
}

/// Shared, lock-free per-`S`-cell rejection counters — the
/// per-region feedback signal behind targeted cell repairs. One slot
/// per grid cell of the engine's `S`-side; handles drain their
/// cursors' rejection records here with relaxed adds, so the hot path
/// stays lock-free.
#[derive(Debug)]
pub struct CellRejectionStats {
    counters: Vec<AtomicU64>,
}

impl CellRejectionStats {
    /// Zeroed counters for `cells` cell slots.
    pub fn new(cells: usize) -> Self {
        CellRejectionStats {
            counters: (0..cells).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Number of cell slots tracked.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// Whether any slots are tracked.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// Records one rejected iteration attributed to `slot` (ignores
    /// out-of-range slots defensively).
    pub fn record(&self, slot: u32) {
        if let Some(c) = self.counters.get(slot as usize) {
            c.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a drained batch of per-rejection slot entries.
    pub fn record_all(&self, slots: impl Iterator<Item = u32>) {
        for slot in slots {
            self.record(slot);
        }
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> Vec<u64> {
        self.counters
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }
}

/// A point-in-time view of an engine's aggregate statistics.
#[derive(Clone, Copy, Debug)]
pub struct StatsSnapshot {
    /// Queries served (each `sample_one` / batched `sample` call).
    pub queries: u64,
    /// Join samples drawn across all queries.
    pub samples: u64,
    /// Sampling-loop iterations across all queries, rejections
    /// included (`≥ samples`).
    pub iterations: u64,
    /// Queries that returned a [`srj_core::SampleError`].
    pub errors: u64,
    /// Mean per-query latency.
    pub mean_latency: Duration,
    /// Median per-query latency (bucket resolution).
    pub p50_latency: Duration,
    /// 99th-percentile per-query latency (bucket resolution).
    pub p99_latency: Duration,
    /// Draws served straight from a pre-drawn sample buffer.
    pub buffer_hits: u64,
    /// Bulk buffer refills (each pre-draws [`srj_core::BUFFER_CAP`]
    /// ids).
    pub buffer_refills: u64,
    /// Buffers dropped because their cell's backing unit changed
    /// (token mismatch in a cursor, or an epoch swap retiring them).
    pub buffer_invalidations: u64,
}

impl StatsSnapshot {
    /// Observed rejection overhead across every handle:
    /// `iterations / samples` — the serving-time measurement of the
    /// planner's `Σµ/|J|` estimate (`1.0` = no rejections). `0.0` on
    /// a freshly built engine (no division by a zero sample count —
    /// never NaN). Re-plan triggers that must distinguish "no signal
    /// yet" from a real rate use
    /// [`crate::EpochEngine::observed_rejection_rate`], which stays
    /// `Option`-valued.
    pub fn rejection_rate(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.iterations as f64 / self.samples as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let stats = EngineStats::new();
        stats.record_query(10, 15, Duration::from_micros(5));
        stats.record_query(20, 28, Duration::from_micros(50));
        stats.record_error(7, Duration::from_micros(1));
        let snap = stats.snapshot();
        assert_eq!(snap.queries, 3);
        assert_eq!(snap.samples, 30);
        assert_eq!(snap.iterations, 50);
        assert_eq!(snap.errors, 1);
        assert!(snap.mean_latency > Duration::ZERO);
    }

    #[test]
    fn rejection_rate_is_iterations_over_samples() {
        let stats = EngineStats::new();
        // 100 accepted samples over 250 iterations ⇒ overhead 2.5
        stats.record_query(40, 100, Duration::from_micros(5));
        stats.record_query(60, 150, Duration::from_micros(5));
        let rate = stats.snapshot().rejection_rate();
        assert!((rate - 2.5).abs() < 1e-12, "rate = {rate}");
        // an error that burned iterations still counts toward overhead
        stats.record_error(50, Duration::from_micros(1));
        let rate = stats.snapshot().rejection_rate();
        assert!((rate - 3.0).abs() < 1e-12, "rate = {rate}");
    }

    #[test]
    fn zero_sample_rejection_rate_is_zero_not_nan() {
        // Regression: a freshly built engine has samples == 0; the
        // rate must come back exactly 0.0, not NaN from 0/0.
        let snap = EngineStats::new().snapshot();
        assert_eq!(snap.samples, 0);
        let rate = snap.rejection_rate();
        assert!(!rate.is_nan());
        assert_eq!(rate, 0.0);
        // Iterations with zero samples (every query errored before
        // accepting) must also stay finite.
        let stats = EngineStats::new();
        stats.record_error(25, Duration::from_micros(1));
        assert_eq!(stats.snapshot().rejection_rate(), 0.0);
    }

    #[test]
    fn quantiles_are_bucket_accurate() {
        let stats = EngineStats::new();
        // 99 fast queries at ~1µs, one slow at ~1ms.
        for _ in 0..99 {
            stats.record_query(1, 1, Duration::from_micros(1));
        }
        stats.record_query(1, 1, Duration::from_millis(1));
        let snap = stats.snapshot();
        // p50 must sit in the microsecond bucket (within 2x).
        assert!(snap.p50_latency < Duration::from_micros(4), "{snap:?}");
        // p99 lands in one of the two top buckets depending on rank
        // rounding; it must be far above p50.
        assert!(snap.p99_latency > snap.p50_latency * 50, "{snap:?}");
    }

    #[test]
    fn empty_snapshot_is_zero() {
        let snap = EngineStats::new().snapshot();
        assert_eq!(snap.queries, 0);
        assert_eq!(snap.p50_latency, Duration::ZERO);
        assert_eq!(snap.p99_latency, Duration::ZERO);
    }
}
