//! The adaptive planner behind [`crate::Engine::auto`]: pick the
//! cheapest sampler for a workload from an `O(n + m)` estimate.
//!
//! The paper's three algorithms trade build cost against per-sample
//! cost:
//!
//! * **KDS** — expensive exact counting (`O(n√m)`) but zero rejections;
//!   unbeatable when `n·√m` is small.
//! * **KDS-rejection** — near-free bounds (`O(n + m)`), but every
//!   sample pays the bound looseness `Σµ/|J|` in expected rejections;
//!   best when the grid bounds are tight (high-selectivity workloads
//!   whose windows are densely populated).
//! * **BBST** — moderate build (`Õ(n + m)`), guaranteed `Õ(1)`
//!   per-sample cost regardless of bound looseness; the safe default
//!   for low-selectivity workloads where the 9-cell bound is loose.
//!
//! The planner measures exactly the quantity that separates the last
//! two: the §III-B grid upper bound `Σµ` (computed in full, `O(n)`) and
//! a sampled exact-count estimate of `|J|` (`O(√n · cell)`), giving the
//! expected rejection overhead `Σµ/|J|` before committing to a build.

use srj_geom::{Point, Rect};
use srj_grid::Grid;

use crate::Algorithm;
use srj_core::SampleConfig;

/// Below this `n·√m` product, KDS's exact counting is too cheap to
/// bother estimating anything else.
pub const KDS_COST_BUDGET: f64 = 2.0e5;

/// Maximum acceptable expected rejection overhead `Σµ/|J|` for
/// KDS-rejection; looser bounds fall through to BBST, whose per-sample
/// cost is insensitive to the overhead (Lemma 6).
pub const MAX_REJECTION_OVERHEAD: f64 = 4.0;

/// How many query points the join-size probe exact-counts.
const PROBE_POINTS: usize = 512;

/// What [`crate::Engine::auto`] decided, and the estimates that drove
/// the decision.
///
/// The estimate fields are `None` when the small-input fast path
/// (rule 1) fired: the planner never built the grid, so no `Σµ` or
/// `|Ĵ|` exists — `0.0` sentinels would read as "empty join".
#[derive(Clone, Copy, Debug)]
pub struct PlanReport {
    /// `|R|`.
    pub n: usize,
    /// `|S|`.
    pub m: usize,
    /// The §III-B grid upper bound `Σ_r µ(r)` (9-cell populations).
    pub mu_grid_total: Option<f64>,
    /// Estimated join cardinality `|Ĵ|` from the sampled exact-count
    /// probe.
    pub est_join_size: Option<f64>,
    /// Estimated rejection overhead `Σµ / |Ĵ|` (`f64::INFINITY` when
    /// the probe found an empty join).
    pub est_overhead: Option<f64>,
    /// The chosen algorithm.
    pub algorithm: Algorithm,
    /// How many `R` shards the build was planned for (`1` =
    /// unsharded). Sharding never changes the algorithm choice — the
    /// per-iteration distribution is shard-oblivious — but it is
    /// recorded here because the shard count is part of the build's
    /// identity (the [`crate::EngineCache`] keys on it).
    pub num_shards: usize,
    /// Whether the engine serving this plan has the buffered draw fast
    /// path active. The planner itself always stamps `false` — buffer
    /// state is a serving-time property, not a build-time decision —
    /// and [`crate::Engine::plan`] overwrites it with the live flag.
    pub buffers: bool,
    /// Human-readable decision rationale.
    pub reason: &'static str,
}

/// Runs the `O(n + m)` estimate and picks an algorithm.
///
/// Also returns the grid built for the estimate (with its build time)
/// so [`crate::Engine::auto`] can donate it to the chosen index build
/// instead of paying the grid-mapping phase twice; `None` on the
/// small-input fast path, which never builds a grid.
pub(crate) fn plan(
    r: &[Point],
    s: &[Point],
    config: &SampleConfig,
    shards: usize,
) -> (PlanReport, Option<(Grid, std::time::Duration)>) {
    let n = r.len();
    let m = s.len();
    // One shard per R point is the most that can ever help.
    let num_shards = shards.clamp(1, n.max(1));

    // Rule 1: tiny problems — exact counting is cheaper than estimating.
    if (n as f64) * (m as f64).sqrt() <= KDS_COST_BUDGET {
        let report = PlanReport {
            n,
            m,
            mu_grid_total: None,
            est_join_size: None,
            est_overhead: None,
            algorithm: Algorithm::Kds,
            num_shards,
            buffers: false,
            reason: "n·√m below the exact-counting budget: KDS's zero-rejection \
                     sampling wins and its O(n√m) build is negligible",
        };
        return (report, None);
    }

    // The same grid KDS-rejection would build (O(m)), reused here for
    // both the full Σµ and the probe's exact window counts, then
    // donated to the chosen index build.
    let t_grid = std::time::Instant::now();
    let grid = Grid::build(s, config.half_extent);
    let grid_build_time = t_grid.elapsed();

    // Full §III-B upper bound: Σ over all r of the 9-cell population.
    let mu_grid_total: f64 = r
        .iter()
        .map(|&rp| grid.neighborhood_population(rp) as f64)
        .sum();

    // Sampled |J| estimate: exact-count an evenly-spaced subset of R
    // and scale. Evenly spaced (not random) keeps the planner
    // deterministic for a given input.
    let probes = PROBE_POINTS.min(n);
    let stride = (n / probes).max(1);
    let mut probed = 0usize;
    let mut probe_sum = 0usize;
    for i in (0..n).step_by(stride) {
        probe_sum += grid.exact_window_count(&Rect::window(r[i], config.half_extent));
        probed += 1;
    }
    let est_join_size = probe_sum as f64 * (n as f64 / probed.max(1) as f64);

    let est_overhead = if est_join_size > 0.0 {
        mu_grid_total / est_join_size
    } else {
        f64::INFINITY
    };

    // Rule 2: tight bounds — rejection sampling's expected iterations
    // per sample (= the overhead) are acceptable and its build is the
    // cheapest of the three.
    let (algorithm, reason) = if est_overhead <= MAX_REJECTION_OVERHEAD {
        (
            Algorithm::KdsRejection,
            "grid bounds are tight (estimated Σµ/|J| within budget): rejection \
             sampling's cheap build wins and rejections stay rare",
        )
    } else {
        // Rule 3: loose bounds — BBST's Õ(1)-per-sample guarantee is
        // immune to the overhead.
        (
            Algorithm::Bbst,
            "grid bounds are loose (estimated Σµ/|J| over budget): BBST's \
             bounded per-sample cost beats rejection's unbounded retries",
        )
    };

    let report = PlanReport {
        n,
        m,
        mu_grid_total: Some(mu_grid_total),
        est_join_size: Some(est_join_size),
        est_overhead: Some(est_overhead),
        algorithm,
        num_shards,
        buffers: false,
        reason,
    };
    (report, Some((grid, grid_build_time)))
}

/// Re-plans from a **serving-time** observation instead of a build-time
/// estimate: the feedback half of the adaptive planner.
///
/// `observed_overhead` is the measured `iterations / samples` of the
/// running engine (`SamplerHandle::rejection_rate` /
/// `StatsSnapshot::rejection_rate`) — the ground truth the build-time
/// `Σµ/|Ĵ|` estimate tried to predict. The decision rules are the same
/// as [`plan`]'s, with the observation replacing the estimate:
///
/// 1. `n·√m ≤` [`KDS_COST_BUDGET`] → **KDS**;
/// 2. observed overhead within [`MAX_REJECTION_OVERHEAD`] →
///    **KDS-rejection**;
/// 3. otherwise → **BBST** (per-sample cost insensitive to the
///    overhead).
///
/// `EpochEngine` calls this when the observation diverges from
/// `PlanReport::est_overhead` and hot-swaps the algorithm through its
/// epoch mechanism if the answer differs from the running one.
pub fn replan_for_observed(
    n: usize,
    m: usize,
    observed_overhead: f64,
) -> (Algorithm, &'static str) {
    if (n as f64) * (m as f64).sqrt() <= KDS_COST_BUDGET {
        (
            Algorithm::Kds,
            "n·√m below the exact-counting budget: KDS's zero-rejection \
             sampling wins regardless of the observed overhead",
        )
    } else if observed_overhead <= MAX_REJECTION_OVERHEAD {
        (
            Algorithm::KdsRejection,
            "observed rejection overhead within budget: rejection \
             sampling's cheap build wins",
        )
    } else {
        (
            Algorithm::Bbst,
            "observed rejection overhead over budget: BBST's bounded \
             per-sample cost beats rejection's measured retries",
        )
    }
}

/// How many loose cells one repair pass will re-tighten at most — a
/// repair pays one UB pass regardless, so repairing a handful of the
/// worst offenders per pass keeps each decision measurable.
pub const MAX_REPAIR_CELLS: usize = 32;

/// Picks the cells a targeted repair should re-tighten from the
/// measured per-cell rejection counters: every slot with at least
/// `min_rejections` attributed rejections, worst first, capped at
/// [`MAX_REPAIR_CELLS`]. Empty when no cell clears the floor — the
/// caller escalates to [`replan_for_observed`] then.
pub fn repair_candidates(cell_rejections: &[u64], min_rejections: u64) -> Vec<u32> {
    let mut slots: Vec<u32> = cell_rejections
        .iter()
        .enumerate()
        .filter(|(_, &c)| c >= min_rejections.max(1))
        .map(|(i, _)| i as u32)
        .collect();
    slots.sort_unstable_by_key(|&i| std::cmp::Reverse(cell_rejections[i as usize]));
    slots.truncate(MAX_REPAIR_CELLS);
    slots
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repair_candidates_are_floored_ranked_and_capped() {
        let mut rejections = vec![0u64; 100];
        rejections[7] = 500;
        rejections[3] = 900;
        rejections[42] = 10;
        assert_eq!(repair_candidates(&rejections, 64), vec![3, 7]);
        assert_eq!(repair_candidates(&rejections, 5), vec![3, 7, 42]);
        assert!(repair_candidates(&rejections, 1_000).is_empty());
        // a zero floor still requires at least one rejection
        assert_eq!(repair_candidates(&rejections, 0).len(), 3);
        // cap
        let many = vec![100u64; 200];
        assert_eq!(repair_candidates(&many, 1).len(), MAX_REPAIR_CELLS);
    }

    #[test]
    fn replan_follows_the_observed_overhead() {
        // big enough to clear the KDS budget
        let (n, m) = (100_000, 100_000);
        assert_eq!(replan_for_observed(n, m, 1.5).0, Algorithm::KdsRejection);
        assert_eq!(replan_for_observed(n, m, 40.0).0, Algorithm::Bbst);
        // tiny input: KDS regardless of the observation
        assert_eq!(replan_for_observed(50, 50, 40.0).0, Algorithm::Kds);
    }

    #[test]
    fn tiny_input_picks_kds() {
        let r: Vec<Point> = (0..50).map(|i| Point::new(i as f64, i as f64)).collect();
        let s = r.clone();
        let (p, grid) = plan(&r, &s, &SampleConfig::new(2.0), 1);
        assert_eq!(p.algorithm, Algorithm::Kds);
        assert_eq!(p.num_shards, 1);
        assert!(
            p.est_overhead.is_none(),
            "fast path must not fake estimates"
        );
        assert!(grid.is_none());
    }

    #[test]
    fn shard_count_is_recorded_and_clamped() {
        let r: Vec<Point> = (0..50).map(|i| Point::new(i as f64, i as f64)).collect();
        let s = r.clone();
        let (p, _) = plan(&r, &s, &SampleConfig::new(2.0), 8);
        assert_eq!(p.num_shards, 8);
        // more shards than R points is pointless
        let (p, _) = plan(&r, &s, &SampleConfig::new(2.0), 1_000);
        assert_eq!(p.num_shards, 50);
        // zero normalises to unsharded
        let (p, _) = plan(&r, &s, &SampleConfig::new(2.0), 0);
        assert_eq!(p.num_shards, 1);
    }

    #[test]
    fn probe_scales_to_full_population() {
        // uniform grid of points: the probe's scaled estimate must land
        // near the true join size
        let r: Vec<Point> = (0..4_000)
            .map(|i| Point::new((i % 64) as f64, (i / 64) as f64))
            .collect();
        let s = r.clone();
        let cfg = SampleConfig::new(3.0);
        let (p, grid) = plan(&r, &s, &cfg, 1);
        assert!(grid.is_some(), "estimation grid must be donated");
        let est = p.est_join_size.unwrap();
        let true_join = srj_join::grid_join(&r, &s, 3.0).len() as f64;
        let rel = (est - true_join).abs() / true_join;
        assert!(rel < 0.2, "estimate {est} vs true {true_join}");
        assert!(p.mu_grid_total.unwrap() >= true_join);
    }
}
