//! `srj-engine` — a concurrent query-serving subsystem over the
//! paper's join samplers.
//!
//! The paper's algorithms all separate one-time preprocessing from
//! per-sample work ("all algorithms pick join samples progressively",
//! §II; Tables II–IV time the phases separately). `srj-core` makes that
//! seam structural (immutable `*Index` + cheap `*Cursor`); this crate
//! turns it into a service:
//!
//! ```text
//!                 ┌────────────────────────────────────────────┐
//!                 │                Engine (Arc)                │
//!   R, S, l ───►  │  build ONCE:                               │
//!                 │   IndexKind = KdsIndex | KdsRejectionIndex │
//!                 │               | BbstIndex | ShardedIndex<·>│
//!                 │  EngineStats (relaxed atomics)             │
//!                 │  PlanReport  (Engine::auto only)           │
//!                 └───────┬──────────────┬─────────────┬───────┘
//!                         │              │             │
//!                  handle()        handle()      handle()   … O(1) each
//!                         │              │             │
//!                 ┌───────▼──────┐ ┌─────▼────────┐ ┌──▼───────────┐
//!                 │SamplerHandle │ │SamplerHandle │ │SamplerHandle │
//!                 │ own SmallRng │ │ own SmallRng │ │ own SmallRng │
//!                 │ own cursor / │ │ own cursor / │ │ own cursor / │
//!                 │  PhaseReport │ │  PhaseReport │ │  PhaseReport │
//!                 └───────┬──────┘ └─────┬────────┘ └──┬───────────┘
//!                 thread 1 │       thread 2 │    thread N │
//!                          ▼                ▼             ▼
//!                  sample(t) / sample_one() / stream()  — concurrent,
//!                  lock-free against the shared immutable index
//! ```
//!
//! ## Planner ([`Engine::auto`])
//!
//! Picks the serving algorithm from an `O(n + m)` estimate before
//! paying for a build:
//!
//! 1. `n·√m ≤` [`planner::KDS_COST_BUDGET`] → **KDS** (exact counting
//!    is trivially affordable; zero rejections at serve time);
//! 2. estimated `Σµ/|J| ≤` [`planner::MAX_REJECTION_OVERHEAD`] →
//!    **KDS-rejection** (the §III-B grid bounds are tight, so its
//!    cheapest-of-all build wins and rejections stay rare);
//! 3. otherwise → **BBST** (the paper's algorithm: per-sample cost is
//!    `Õ(1)` regardless of bound looseness, Lemma 6).
//!
//! `Σµ` is the same 9-cell grid bound KDS-rejection would use, computed
//! in full; `|J|` is estimated by exact-counting an evenly-spaced probe
//! subset of `R` against the grid. The decision and the estimates that
//! drove it are retained in [`PlanReport`].
//!
//! ## Sharding ([`Engine::build_sharded`], [`crate::shard`])
//!
//! `R` partitioned into `k` contiguous shards, each with its own full
//! index (built concurrently on `SampleConfig::build_threads`
//! threads), served through a top-level alias over per-shard `Σµ_i`.
//! The shard is re-picked on **every** sampling iteration, so accepted
//! samples stay exactly uniform over `J`; `k` serving threads over `k`
//! shards contend on nothing.
//!
//! ## Cache ([`EngineCache`])
//!
//! An LRU map `(dataset id, l bits, shards) → Engine`, so workloads
//! that revisit a window size reuse the built index instead of paying
//! the build again. Hits are O(1) `Arc` clones; evicted engines keep
//! serving for whoever still holds them; the mutex is never held while
//! building.
//!
//! ## Dynamic datasets ([`EpochEngine`], [`DatasetStore`])
//!
//! The dataset is mutable even though every index is immutable: a
//! [`DatasetStore`] buffers inserts/deletes as deltas with
//! version/epoch counters, and an [`EpochEngine`] serves it through an
//! atomic-swap cell — `O(|delta|)` overlay snapshots
//! ([`srj_core::OverlayIndex`], uniformity-preserving) between
//! rebuilds, epoch swaps (reusing the `Arc`-shared `S`-side when only
//! `R` changed) once the pending delta crosses a threshold, and a
//! re-plan hot-swap when the *observed* rejection overhead diverges
//! from the planner's estimate. In-flight handles pin their epoch.
//!
//! ## Statistics ([`Engine::stats`])
//!
//! Queries served, samples drawn, sampling iterations (rejections
//! included — `StatsSnapshot::rejection_rate` is the serving-time
//! `Σµ/|J|` feedback signal), errors, and mean/p50/p99 per-query
//! latency from a log₂-bucketed histogram — all relaxed atomics, no
//! locks on the serving path.

mod cache;
mod dataset;
mod engine;
mod epoch;
pub mod planner;
pub mod shard;
mod stats;

pub use cache::EngineCache;
pub use dataset::{BatchApplied, DatasetSnapshot, DatasetStore, SPatchDelta};
pub use engine::{Algorithm, Engine, HandleStream, SamplerHandle};
pub use epoch::{EpochConfig, EpochEngine, MaintenanceSnapshot};
pub use planner::PlanReport;
pub use shard::ShardedIndex;
pub use stats::{CellRejectionStats, EngineStats, StatsSnapshot};

#[cfg(test)]
mod tests {
    use super::*;
    use srj_core::{SampleConfig, SampleError};
    use srj_geom::{Point, Rect};

    fn pseudo_points(n: usize, seed: u64, extent: f64) -> Vec<Point> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| Point::new(next() * extent, next() * extent))
            .collect()
    }

    #[test]
    fn every_algorithm_serves_valid_pairs() {
        let r = pseudo_points(80, 1, 50.0);
        let s = pseudo_points(120, 2, 50.0);
        let cfg = SampleConfig::new(6.0);
        for algo in [Algorithm::Kds, Algorithm::KdsRejection, Algorithm::Bbst] {
            let engine = Engine::build(&r, &s, &cfg, algo);
            assert_eq!(engine.algorithm(), algo);
            let mut h = engine.handle_seeded(3);
            let pairs = h.sample(300).unwrap();
            assert_eq!(pairs.len(), 300);
            for p in pairs {
                let w = Rect::window(r[p.r as usize], 6.0);
                assert!(w.contains(s[p.s as usize]), "{algo}");
            }
        }
    }

    #[test]
    fn same_seed_same_stream_distinct_seeds_distinct_streams() {
        let r = pseudo_points(60, 11, 40.0);
        let s = pseudo_points(90, 12, 40.0);
        let engine = Engine::build(&r, &s, &SampleConfig::new(5.0), Algorithm::Bbst);
        let a = engine.handle_seeded(42).sample(200).unwrap();
        let b = engine.handle_seeded(42).sample(200).unwrap();
        let c = engine.handle_seeded(43).sample(200).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn auto_handles_are_unique_but_deterministic_per_engine() {
        let r = pseudo_points(50, 21, 30.0);
        let s = pseudo_points(70, 22, 30.0);
        let cfg = SampleConfig::new(4.0);
        let e1 = Engine::build(&r, &s, &cfg, Algorithm::Kds);
        let e2 = Engine::build(&r, &s, &cfg, Algorithm::Kds);
        // k-th auto handle draws the same stream on equal engines...
        let s1 = e1.handle().sample(50).unwrap();
        let s2 = e2.handle().sample(50).unwrap();
        assert_eq!(s1, s2);
        // ...but successive handles of one engine differ.
        let s3 = e1.handle().sample(50).unwrap();
        assert_ne!(s1, s3);
    }

    #[test]
    fn stats_aggregate_across_handles() {
        let r = pseudo_points(60, 31, 40.0);
        let s = pseudo_points(80, 32, 40.0);
        let engine = Engine::build(&r, &s, &SampleConfig::new(5.0), Algorithm::KdsRejection);
        let mut h1 = engine.handle_seeded(1);
        let mut h2 = engine.handle_seeded(2);
        h1.sample(100).unwrap();
        h2.sample(50).unwrap();
        h2.sample_one().unwrap();
        let snap = engine.stats();
        assert_eq!(snap.queries, 3);
        assert_eq!(snap.samples, 151);
        assert_eq!(snap.errors, 0);
        assert!(snap.p99_latency >= snap.p50_latency);
        assert!(snap.mean_latency > std::time::Duration::ZERO);
        // per-handle reports stay separate
        assert_eq!(h1.report().samples, 100);
        assert_eq!(h2.report().samples, 51);
    }

    #[test]
    fn errors_are_counted() {
        let r = vec![Point::new(0.0, 0.0)];
        let s = vec![Point::new(900.0, 900.0)];
        let engine = Engine::build(&r, &s, &SampleConfig::new(1.0), Algorithm::Kds);
        let mut h = engine.handle_seeded(0);
        assert_eq!(h.sample_one(), Err(SampleError::EmptyJoin));
        assert_eq!(engine.stats().errors, 1);
    }

    #[test]
    fn stream_is_progressive_and_stops_on_error() {
        let r = pseudo_points(40, 41, 30.0);
        let s = pseudo_points(60, 42, 30.0);
        let engine = Engine::build(&r, &s, &SampleConfig::new(4.0), Algorithm::Bbst);
        let mut h = engine.handle_seeded(5);
        let collected: Vec<_> = h.stream().take(75).collect();
        assert_eq!(collected.len(), 75);
        for p in collected {
            let w = Rect::window(r[p.r as usize], 4.0);
            assert!(w.contains(s[p.s as usize]));
        }

        let empty = Engine::build(
            &[Point::new(0.0, 0.0)],
            &[Point::new(500.0, 500.0)],
            &SampleConfig::new(1.0),
            Algorithm::Bbst,
        );
        let mut h = empty.handle_seeded(0);
        let mut stream = h.stream();
        assert!(stream.next().is_none());
        assert_eq!(stream.error(), Some(SampleError::EmptyJoin));
    }

    #[test]
    fn auto_records_a_plan() {
        let r = pseudo_points(100, 51, 40.0);
        let s = pseudo_points(100, 52, 40.0);
        let engine = Engine::auto(&r, &s, &SampleConfig::new(5.0));
        let plan = engine.plan().expect("auto must record its plan");
        assert_eq!(plan.algorithm, engine.algorithm());
        assert!(!plan.reason.is_empty());
        // tiny input ⇒ the budget rule fires
        assert_eq!(plan.algorithm, Algorithm::Kds);
        // forced builds carry no plan
        let forced = Engine::build(&r, &s, &SampleConfig::new(5.0), Algorithm::Bbst);
        assert!(forced.plan().is_none());
    }

    #[test]
    fn auto_picks_rejection_for_high_selectivity_workloads() {
        // Dense uniform data with windows that cover a large fraction
        // of their 3×3 cell block: the 9-cell bound is tight (overhead
        // ≈ (3l/2l)² = 2.25 < 4), so rejection sampling's cheap build
        // should win.
        let r = pseudo_points(4_000, 61, 100.0);
        let s = pseudo_points(4_000, 62, 100.0);
        let engine = Engine::auto(&r, &s, &SampleConfig::new(10.0));
        let plan = engine.plan().unwrap();
        assert_eq!(
            plan.algorithm,
            Algorithm::KdsRejection,
            "tight bounds should pick rejection: {plan:?}"
        );
        assert!(plan.est_overhead.unwrap() <= planner::MAX_REJECTION_OVERHEAD);
        // and the engine actually serves
        assert!(engine.handle_seeded(1).sample(100).is_ok());
    }

    #[test]
    fn auto_picks_bbst_for_low_selectivity_workloads() {
        // Near-miss workload: every S point sits in a neighbouring grid
        // cell of some R point (so the 9-cell bound counts it) but
        // outside almost every window. A sparse set of true matches
        // keeps |J| > 0. Overhead Σµ/|J| ≫ 4 ⇒ BBST.
        let l = 5.0;
        let mut r = Vec::new();
        let mut s = Vec::new();
        for i in 0..4_000 {
            let x = (i % 64) as f64 * 3.0 * l;
            let y = (i / 64) as f64 * 3.0 * l;
            r.push(Point::new(x, y));
            // diagonal neighbour: inside the 3×3 block, outside w(r)
            s.push(Point::new(x + 1.9 * l, y + 1.9 * l));
            if i % 97 == 0 {
                s.push(Point::new(x + 0.5 * l, y + 0.5 * l)); // true match
            }
        }
        let engine = Engine::auto(&r, &s, &SampleConfig::new(l));
        let plan = engine.plan().unwrap();
        assert_eq!(
            plan.algorithm,
            Algorithm::Bbst,
            "loose bounds should pick BBST: {plan:?}"
        );
        assert!(plan.est_overhead.unwrap() > planner::MAX_REJECTION_OVERHEAD);
        assert!(engine.handle_seeded(1).sample(50).is_ok());
    }

    #[test]
    fn sharded_engine_serves_valid_globally_indexed_pairs() {
        let r = pseudo_points(200, 81, 60.0);
        let s = pseudo_points(300, 82, 60.0);
        let cfg = SampleConfig::new(6.0);
        for algo in [Algorithm::Kds, Algorithm::KdsRejection, Algorithm::Bbst] {
            let engine = Engine::build_sharded(&r, &s, &cfg, algo, 4);
            assert_eq!(engine.algorithm(), algo);
            assert_eq!(engine.shards(), 4);
            let mut h = engine.handle_seeded(9);
            let pairs = h.sample(400).unwrap();
            assert_eq!(pairs.len(), 400);
            for p in pairs {
                let w = Rect::window(r[p.r as usize], 6.0);
                assert!(w.contains(s[p.s as usize]), "{algo}: bad remap {p:?}");
            }
            assert!(engine.memory_bytes() > 0);
        }
    }

    #[test]
    fn sharded_engines_share_one_s_side() {
        // m ≫ n makes the S-side dominate the footprint: before the
        // Arc-sharing, a k-shard engine paid ~k× the unsharded memory;
        // now it pays one S-side plus k small R-sides.
        let r = pseudo_points(200, 95, 60.0);
        let s = pseudo_points(4_000, 96, 60.0);
        let cfg = SampleConfig::new(5.0);
        for algo in [Algorithm::Kds, Algorithm::KdsRejection, Algorithm::Bbst] {
            let unsharded = Engine::build(&r, &s, &cfg, algo);
            let sharded = Engine::build_sharded(&r, &s, &cfg, algo, 4);
            assert!(
                sharded.memory_bytes() < 2 * unsharded.memory_bytes(),
                "{algo}: sharded {} vs unsharded {}",
                sharded.memory_bytes(),
                unsharded.memory_bytes()
            );
            // and the build report still covers the S-side phases
            let rep = sharded.build_report();
            assert!(rep.upper_bounding > std::time::Duration::ZERO);
        }
    }

    #[test]
    fn sharded_and_unsharded_report_one_vs_k_shards() {
        let r = pseudo_points(100, 91, 40.0);
        let s = pseudo_points(100, 92, 40.0);
        let cfg = SampleConfig::new(5.0);
        assert_eq!(Engine::build(&r, &s, &cfg, Algorithm::Bbst).shards(), 1);
        // shards = 1 falls back to the plain unsharded build
        assert_eq!(
            Engine::build_sharded(&r, &s, &cfg, Algorithm::Bbst, 1).shards(),
            1
        );
        assert_eq!(
            Engine::build_sharded(&r, &s, &cfg, Algorithm::Bbst, 3).shards(),
            3
        );
    }

    #[test]
    fn auto_sharded_records_plan_and_shard_count() {
        let r = pseudo_points(100, 93, 40.0);
        let s = pseudo_points(100, 94, 40.0);
        let engine = Engine::auto_sharded(&r, &s, &SampleConfig::new(5.0), 4);
        let plan = engine.plan().expect("auto_sharded must record its plan");
        assert_eq!(plan.num_shards, 4);
        assert_eq!(engine.shards(), 4);
        assert_eq!(plan.algorithm, engine.algorithm());
        assert!(engine.handle_seeded(1).sample(50).is_ok());
    }

    #[test]
    fn rejection_rate_flows_from_handles_to_engine_stats() {
        // Near-miss workload (see auto_picks_bbst...): rejections are
        // guaranteed, so iterations must exceed samples.
        let l = 5.0;
        let mut r = Vec::new();
        let mut s = Vec::new();
        for i in 0..500 {
            let x = (i % 32) as f64 * 3.0 * l;
            let y = (i / 32) as f64 * 3.0 * l;
            r.push(Point::new(x, y));
            s.push(Point::new(x + 1.9 * l, y + 1.9 * l));
            if i % 7 == 0 {
                s.push(Point::new(x + 0.5 * l, y + 0.5 * l));
            }
        }
        let engine = Engine::build(&r, &s, &SampleConfig::new(l), Algorithm::KdsRejection);
        let mut h = engine.handle_seeded(3);
        h.sample(300).unwrap();

        // per-handle rate: iterations / samples, straight off the report
        let rep = h.report();
        let rate = h.rejection_rate().expect("samples were drawn");
        assert!((rate - rep.iterations as f64 / rep.samples as f64).abs() < 1e-12);
        assert!(rate > 1.0, "near-miss workload must reject: rate = {rate}");

        // aggregate rate: engine stats saw the same iterations
        let snap = engine.stats();
        assert_eq!(snap.samples, 300);
        assert_eq!(snap.iterations, rep.iterations);
        let agg = snap.rejection_rate();
        assert!((agg - rate).abs() < 1e-12);

        // a second handle's iterations add on top
        let mut h2 = engine.handle_seeded(4);
        h2.sample(100).unwrap();
        let snap = engine.stats();
        assert_eq!(snap.samples, 400);
        assert_eq!(snap.iterations, rep.iterations + h2.report().iterations);

        // KDS never rejects: rate is exactly 1
        let kds = Engine::build(&r, &s, &SampleConfig::new(l), Algorithm::Kds);
        let mut hk = kds.handle_seeded(5);
        hk.sample(200).unwrap();
        assert_eq!(hk.rejection_rate(), Some(1.0));
        assert_eq!(kds.stats().rejection_rate(), 1.0);
    }

    #[test]
    fn build_report_and_memory_are_exposed() {
        let r = pseudo_points(60, 71, 40.0);
        let s = pseudo_points(90, 72, 40.0);
        let engine = Engine::build(&r, &s, &SampleConfig::new(5.0), Algorithm::Bbst);
        assert!(engine.build_report().grid_mapping > std::time::Duration::ZERO);
        assert!(engine.memory_bytes() > 0);
    }
}
