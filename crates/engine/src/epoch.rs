//! Epoch-versioned serving over a mutable dataset, with cell-granular
//! incremental rebuilds and rejection-rate-driven repair/re-planning.
//!
//! An [`EpochEngine`] wraps the immutable-engine machinery in an
//! atomic-swap cell over a [`DatasetStore`]. Maintenance escalates
//! through a fixed ladder, cheapest step first:
//!
//! ```text
//!   DatasetStore (mutable R/S + DeltaSet + epoch/version + s_dead)
//!        │ insert/delete (O(1) buffered)
//!        ▼
//!   EpochEngine ── swap cell ──► Engine (epoch e)
//!        │
//!        │ 1. minor swap      — O(|delta|) overlay snapshot; no
//!        │                      structures touched
//!        │ 2. cell patch      — compact_incremental(): R-side rebuilt,
//!        │                      S-side patched cell by cell (clean
//!        │                      cells Arc-shared; deletes shrink Σµ)
//!        │ 3. full rebuild    — compact(): purge dead ids, renumber,
//!        │                      rebuild everything (dirty-cell
//!        │                      fraction over the patch budget)
//!        │ 4. cell repair     — per-cell rejection counters name the
//!        │                      loose cells; re-tighten only those
//!        │                      (BBST Exact mass) over the shared
//!        │                      S-side
//!        │ 5. re-plan         — observed overhead still diverged:
//!        │                      planner::replan_for_observed picks a
//!        │                      new algorithm, hot-swapped
//!        └─ in-flight SamplerHandles pin their epoch via Arc
//! ```
//!
//! **Swap semantics.** Handles pin their engine through an `Arc`: a
//! swap never interrupts an in-flight handle — it finishes (and keeps
//! recording stats) against the epoch it started on, while every
//! *new* handle sees the freshly swapped engine. Refresh is **lazy**:
//! mutations only buffer into the store; the first
//! [`EpochEngine::handle`] after a mutation pays the swap.
//!
//! **Rebuild triggers.** A major (patch or full) rebuild fires when the
//! total pending fraction exceeds [`EpochConfig::rebuild_fraction`]
//! **or** the tombstone-only fraction exceeds
//! [`EpochConfig::tombstone_rebuild_fraction`] — tombstones both
//! degrade the overlay's acceptance rate and keep `Σµ` inflated, so
//! delete-heavy deltas rebuild sooner (the rebuild is cell-granular
//! and therefore cheap), and `Σµ` actually shrinks between rebuilds.
//!
//! **Repair and re-planning.** The serving-time rejection overhead
//! (`iterations / samples`, accumulated across the epoch's overlay
//! snapshots) is compared against the build-time estimate
//! `PlanReport::est_overhead`. Past
//! [`EpochConfig::repair_factor`] × estimate, the per-cell rejection
//! counters name the loose cells and [`crate::Engine::repair_cells`]
//! re-tightens only those (sharing the whole S-side); only when no
//! repair is possible (or it didn't help) does the engine escalate to
//! [`crate::planner::replan_for_observed`] past
//! [`EpochConfig::replan_factor`] × estimate and hot-swap the
//! algorithm. Zero-sample engines never trigger either (the rate
//! accessors return `None`, not NaN); pinned algorithms may still be
//! repaired (repair never changes the algorithm) but never re-planned.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

use srj_core::{OverlaySupport, SampleConfig};
use srj_geom::{Point, PointId};
use srj_obs::journal::{event, EventKind};

use crate::dataset::{DatasetSnapshot, DatasetStore};
use crate::planner::{self, repair_candidates, replan_for_observed};
use crate::stats::StatsSnapshot;
use crate::{Algorithm, Engine, SamplerHandle};

/// Knobs for the epoch/patch/repair/re-plan machinery.
#[derive(Clone, Copy, Debug)]
pub struct EpochConfig {
    /// Major-rebuild threshold: compact and rebuild once pending
    /// mutations exceed this fraction of the base snapshot size.
    /// Default 0.25.
    pub rebuild_fraction: f64,
    /// Tombstone-only rebuild threshold: rebuild once pending
    /// **deletes** alone exceed this fraction of the base, even while
    /// the total pending fraction is below `rebuild_fraction` — the
    /// rebuild is cell-granular, and it is the only way `Σµ` shrinks.
    /// Default 0.125.
    pub tombstone_rebuild_fraction: f64,
    /// Cell-patch budget: an S-mutating rebuild goes through the
    /// cell-granular patch path while the dirty cells are at most this
    /// fraction of the S-side cells, and falls back to a full rebuild
    /// (purging dead ids, renumbering) beyond it. Default 0.5.
    pub max_patch_fraction: f64,
    /// Repair when the observed rejection overhead exceeds the planned
    /// estimate by this factor (and per-cell counters name loose
    /// cells). Must not exceed `replan_factor` — repair is the cheaper
    /// rung. Default 1.5.
    pub repair_factor: f64,
    /// Minimum rejections attributed to one cell before it is
    /// considered loose enough to repair. Default 64.
    pub repair_min_cell_rejections: u64,
    /// Re-plan when the observed rejection overhead exceeds the
    /// planned estimate by this factor. Default 2.0.
    pub replan_factor: f64,
    /// Minimum accepted samples (per epoch) before the repair/re-plan
    /// triggers are considered — avoids deciding on noise. Default
    /// 1024.
    pub replan_min_samples: u64,
    /// `R`-shard count for every build (see [`Engine::build_sharded`]).
    /// Default 1.
    pub shards: usize,
    /// Pinned algorithm, or `None` for planner choice + adaptive
    /// re-planning (a pinned algorithm is never re-planned away, but
    /// may still be cell-repaired).
    pub algorithm: Option<Algorithm>,
}

impl Default for EpochConfig {
    fn default() -> Self {
        EpochConfig {
            rebuild_fraction: 0.25,
            tombstone_rebuild_fraction: 0.125,
            max_patch_fraction: 0.5,
            repair_factor: 1.5,
            repair_min_cell_rejections: 64,
            replan_factor: 2.0,
            replan_min_samples: 1024,
            shards: 1,
            algorithm: None,
        }
    }
}

impl EpochConfig {
    /// Overrides the rebuild threshold.
    pub fn with_rebuild_fraction(mut self, fraction: f64) -> Self {
        assert!(fraction > 0.0, "rebuild fraction must be positive");
        self.rebuild_fraction = fraction;
        self
    }

    /// Overrides the tombstone-only rebuild threshold.
    pub fn with_tombstone_rebuild_fraction(mut self, fraction: f64) -> Self {
        assert!(
            fraction > 0.0,
            "tombstone rebuild fraction must be positive"
        );
        self.tombstone_rebuild_fraction = fraction;
        self
    }

    /// Overrides the cell-patch budget (dirty-cell fraction above which
    /// a rebuild goes full instead of patching).
    pub fn with_max_patch_fraction(mut self, fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "patch fraction must be in [0, 1]"
        );
        self.max_patch_fraction = fraction;
        self
    }

    /// Overrides the repair divergence factor.
    pub fn with_repair_factor(mut self, factor: f64) -> Self {
        assert!(factor >= 1.0, "repair factor must be >= 1");
        self.repair_factor = factor;
        self
    }

    /// Overrides the per-cell rejection floor for repairs.
    pub fn with_repair_min_cell_rejections(mut self, rejections: u64) -> Self {
        self.repair_min_cell_rejections = rejections;
        self
    }

    /// Overrides the re-plan divergence factor.
    pub fn with_replan_factor(mut self, factor: f64) -> Self {
        assert!(factor >= 1.0, "replan factor must be >= 1");
        self.replan_factor = factor;
        self
    }

    /// Overrides the re-plan warm-up sample count.
    pub fn with_replan_min_samples(mut self, samples: u64) -> Self {
        self.replan_min_samples = samples;
        self
    }

    /// Sets the shard topology.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Pins the serving algorithm (disables re-planning; repairs stay
    /// enabled).
    pub fn with_algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = Some(algorithm);
        self
    }
}

/// What the swap cell currently serves.
struct EpochState {
    /// The epoch's full (non-overlay) build — overlay snapshots stack
    /// on this, and patch/R-only rebuilds harvest its `S`-side
    /// structures.
    base: Engine,
    /// The exact `S` allocation `base` was built over. A rebuild may
    /// only reuse or patch `base`'s `S`-side structures when the store
    /// still serves this very allocation — a version/flag check is not
    /// enough, because a sibling engine sharing the store may have
    /// compacted an `S` mutation in between.
    base_s: Arc<Vec<Point>>,
    /// What new handles get: `base`, or an overlay snapshot over it.
    current: Engine,
    /// Per-epoch overlay support grids, built lazily on the first
    /// mutation of the epoch and shared by all its snapshots.
    support: Option<Arc<OverlaySupport>>,
    built_epoch: u64,
    built_version: u64,
    /// The planner's `Σµ/|Ĵ|` estimate for this epoch (`None` after a
    /// forced/re-planned/patched build — the absolute
    /// [`planner::MAX_REJECTION_OVERHEAD`] baseline applies then).
    planned_overhead: f64,
    has_plan: bool,
    /// Stats carried over from this epoch's superseded overlay
    /// snapshots (their engines got fresh counters), so the
    /// repair/re-plan signals see the whole epoch.
    acc_samples: u64,
    acc_iterations: u64,
    /// Per-cell rejection counters carried over from superseded
    /// snapshots, parallel to the engine's cell slots.
    acc_cell_rejections: Vec<u64>,
    /// Set once a repair attempt could not improve anything (no
    /// repairable cells left, or the algorithm has no per-cell knob);
    /// gates the repair rung so the ladder escalates to re-planning
    /// instead of retrying forever. Reset on every epoch commit.
    repair_exhausted: bool,
}

/// A mutually consistent maintenance-state snapshot of an
/// [`EpochEngine`], as returned by
/// [`EpochEngine::maintenance_snapshot`]: every field describes the
/// same committed engine state.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MaintenanceSnapshot {
    /// The epoch the swap cell serves.
    pub epoch: u64,
    /// `Σµ` of the engine currently serving.
    pub mu_total: f64,
    /// Minor swaps so far.
    pub minor_swaps: u64,
    /// Major swaps so far (patch-based included).
    pub major_swaps: u64,
    /// Major swaps that went through the cell-granular patch path.
    pub patch_swaps: u64,
    /// Total `S`-cells rebuilt by patch-based swaps.
    pub cells_patched: u64,
    /// Targeted cell repairs so far.
    pub repairs: u64,
    /// Re-plan hot-swaps so far.
    pub replans: u64,
    /// Duration of the most recent swap, nanoseconds.
    pub last_swap_ns: u64,
    /// Buffered-draw hits across the cell's history (monotone).
    pub buffer_hits: u64,
    /// Bulk buffer refills across the cell's history (monotone).
    pub buffer_refills: u64,
    /// Buffer invalidations — cursor token mismatches plus one per
    /// swap that retired an armed engine (monotone).
    pub buffer_invalidations: u64,
}

enum Maintenance {
    /// Store drifted: refresh the snapshot (minor or major per the
    /// rebuild thresholds).
    Drift,
    /// Loose cells measured: re-tighten exactly these slots.
    Repair(Vec<u32>),
    /// Observed rejection overhead diverged beyond repair: hot-swap to
    /// this algorithm.
    Replan(Algorithm),
}

/// Epoch-versioned engine over a [`DatasetStore`]: lazy overlay swaps,
/// cell-granular patch rebuilds, targeted cell repairs, and
/// rejection-rate-driven re-planning. See the module docs.
///
/// `Send + Sync`; share one behind an `Arc`. Reads (issuing handles)
/// take a short read lock; a needed swap is serialised on a
/// maintenance mutex and paid by the first caller that observes the
/// drift.
pub struct EpochEngine {
    store: Arc<DatasetStore>,
    config: SampleConfig,
    cfg: EpochConfig,
    state: RwLock<EpochState>,
    maintain: Mutex<()>,
    minor_swaps: AtomicU64,
    major_swaps: AtomicU64,
    patch_swaps: AtomicU64,
    cells_patched: AtomicU64,
    repairs: AtomicU64,
    replans: AtomicU64,
    last_swap_ns: AtomicU64,
    /// Whether freshly committed engines serve with the buffered draw
    /// fast path (applied to every engine this cell installs).
    buffers: AtomicBool,
    /// Buffer counters of superseded engines, accumulated at swap time
    /// so the exposition totals stay monotone across epochs (the
    /// planner-window accumulators in [`EpochState`] reset on commit;
    /// these never do).
    acc_buffer_hits: AtomicU64,
    acc_buffer_refills: AtomicU64,
    acc_buffer_invalidations: AtomicU64,
}

const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<EpochEngine>();
};

impl EpochEngine {
    /// Builds the first epoch over a fresh store holding `(r, s)`.
    pub fn new(r: Vec<Point>, s: Vec<Point>, config: &SampleConfig, cfg: EpochConfig) -> Self {
        Self::with_store(Arc::new(DatasetStore::new(r, s)), config, cfg)
    }

    /// Builds the first epoch over an existing (possibly shared and
    /// already mutated) store. Multiple epoch engines — e.g. one per
    /// window size `l` — may share one store; each maintains its own
    /// swap cell and refreshes independently.
    pub fn with_store(store: Arc<DatasetStore>, config: &SampleConfig, cfg: EpochConfig) -> Self {
        assert!(
            cfg.repair_factor <= cfg.replan_factor,
            "repair must be the cheaper rung: repair_factor ({}) > replan_factor ({})",
            cfg.repair_factor,
            cfg.replan_factor
        );
        // A full build must never run over a base with dead ids (a
        // sibling engine's incremental compaction may have left some):
        // purge first — the compaction is a no-op otherwise.
        if store.s_dead_len() > 0 {
            let _ = store.compact();
        }
        let snap = store.snapshot();
        let (base, planned) = Self::build_base(&snap, config, &cfg, cfg.algorithm);
        let cells = base.cell_count();
        let mut state = EpochState {
            current: base.clone(),
            base,
            base_s: Arc::clone(&snap.base_s),
            support: None,
            built_epoch: snap.epoch,
            built_version: snap.version,
            planned_overhead: planned.unwrap_or(planner::MAX_REJECTION_OVERHEAD),
            has_plan: planned.is_some(),
            acc_samples: 0,
            acc_iterations: 0,
            acc_cell_rejections: vec![0; cells],
            repair_exhausted: false,
        };
        if !snap.delta.is_empty() {
            // The store already carried mutations: serve them through
            // an overlay from the start.
            let support = Arc::new(OverlaySupport::build_filtered(
                &snap.base_r,
                &snap.base_s,
                &snap.s_dead,
                config.half_extent,
            ));
            state.current = state
                .base
                .with_overlay(snap.delta.clone(), &support, config);
            state.support = Some(support);
        }
        EpochEngine {
            store,
            config: *config,
            cfg,
            state: RwLock::new(state),
            maintain: Mutex::new(()),
            minor_swaps: AtomicU64::new(0),
            major_swaps: AtomicU64::new(0),
            patch_swaps: AtomicU64::new(0),
            cells_patched: AtomicU64::new(0),
            repairs: AtomicU64::new(0),
            replans: AtomicU64::new(0),
            last_swap_ns: AtomicU64::new(0),
            buffers: AtomicBool::new(true),
            acc_buffer_hits: AtomicU64::new(0),
            acc_buffer_refills: AtomicU64::new(0),
            acc_buffer_invalidations: AtomicU64::new(0),
        }
    }

    fn build_base(
        snap: &DatasetSnapshot,
        config: &SampleConfig,
        cfg: &EpochConfig,
        forced: Option<Algorithm>,
    ) -> (Engine, Option<f64>) {
        debug_assert!(
            snap.s_dead.is_empty(),
            "full builds must run over a purged base"
        );
        match forced {
            Some(a) => (
                Engine::build_sharded(&snap.base_r, &snap.base_s, config, a, cfg.shards),
                None,
            ),
            None => {
                let e = Engine::auto_sharded(&snap.base_r, &snap.base_s, config, cfg.shards);
                let planned = e.plan().and_then(|p| p.est_overhead);
                (e, planned)
            }
        }
    }

    /// The shared mutable dataset.
    pub fn store(&self) -> &Arc<DatasetStore> {
        &self.store
    }

    /// Inserts an `R` point (buffered; served by the next refresh).
    pub fn insert_r(&self, p: Point) -> PointId {
        self.store.insert_r(p)
    }

    /// Inserts an `S` point.
    pub fn insert_s(&self, p: Point) -> PointId {
        self.store.insert_s(p)
    }

    /// Tombstones an `R` point by id.
    pub fn delete_r(&self, id: PointId) -> bool {
        self.store.delete_r(id)
    }

    /// Tombstones an `S` point by id.
    pub fn delete_s(&self, id: PointId) -> bool {
        self.store.delete_s(id)
    }

    /// A serving handle over the **current** dataset state (refreshing
    /// the swap cell first if mutations, a repair, or a re-plan are
    /// due). The handle pins its epoch: later swaps never interrupt it.
    pub fn handle(&self) -> SamplerHandle {
        self.refresh();
        self.state
            .read()
            .expect("epoch state poisoned")
            .current
            .handle()
    }

    /// Like [`EpochEngine::handle`] with a fixed RNG seed.
    pub fn handle_seeded(&self, seed: u64) -> SamplerHandle {
        self.refresh();
        self.state
            .read()
            .expect("epoch state poisoned")
            .current
            .handle_seeded(seed)
    }

    /// The engine currently in the swap cell (O(1) `Arc` clone; does
    /// **not** refresh first — pair with [`EpochEngine::refresh`] when
    /// pending mutations must be visible).
    pub fn engine(&self) -> Engine {
        self.state
            .read()
            .expect("epoch state poisoned")
            .current
            .clone()
    }

    /// The algorithm currently serving.
    pub fn algorithm(&self) -> Algorithm {
        self.state
            .read()
            .expect("epoch state poisoned")
            .current
            .algorithm()
    }

    /// The epoch the swap cell serves (trails
    /// [`DatasetStore::epoch`] until the next refresh).
    pub fn epoch(&self) -> u64 {
        self.state.read().expect("epoch state poisoned").built_epoch
    }

    /// Statistics of the current engine (per overlay snapshot; see
    /// [`EpochEngine::observed_rejection_rate`] for the epoch-wide
    /// signal).
    pub fn stats(&self) -> StatsSnapshot {
        self.state
            .read()
            .expect("epoch state poisoned")
            .current
            .stats()
    }

    /// Whether engines committed by this cell serve batches through
    /// the buffered draw fast path.
    pub fn buffers_enabled(&self) -> bool {
        self.buffers.load(Ordering::Relaxed)
    }

    /// Flips the buffered draw fast path for the serving engine and for
    /// every engine a later swap installs (the toggle survives epoch
    /// swaps).
    pub fn set_buffers_enabled(&self, on: bool) {
        self.buffers.store(on, Ordering::Relaxed);
        let st = self.state.read().expect("epoch state poisoned");
        st.current.set_buffers_enabled(on);
        st.base.set_buffers_enabled(on);
    }

    /// Monotone `(hits, refills, invalidations)` of the buffered draw
    /// fast path across the cell's whole history: superseded engines'
    /// counters (absorbed at swap time) plus the serving engine's live
    /// ones.
    pub fn buffer_counters(&self) -> (u64, u64, u64) {
        let st = self.state.read().expect("epoch state poisoned");
        let (h, r, i) = st.current.buffer_counters();
        (
            self.acc_buffer_hits.load(Ordering::Relaxed) + h,
            self.acc_buffer_refills.load(Ordering::Relaxed) + r,
            self.acc_buffer_invalidations.load(Ordering::Relaxed) + i,
        )
    }

    /// Folds a superseded engine's buffer counters into the monotone
    /// accumulators and charges the swap itself as one invalidation
    /// when the retiring engine had buffers armed (its handles' pinned
    /// buffers die with their epoch). Callers journal the matching
    /// [`EventKind::BufferInvalidate`] outside the state lock; this
    /// returns whether one should be emitted.
    fn absorb_buffer_counters(&self, retired: &Engine) -> bool {
        let (h, r, i) = retired.buffer_counters();
        self.acc_buffer_hits.fetch_add(h, Ordering::Relaxed);
        self.acc_buffer_refills.fetch_add(r, Ordering::Relaxed);
        let invalidated = retired.buffers_enabled();
        self.acc_buffer_invalidations
            .fetch_add(i + u64::from(invalidated), Ordering::Relaxed);
        invalidated
    }

    /// Epoch-wide observed rejection overhead `iterations / samples`,
    /// accumulated across the epoch's overlay snapshots. `None` until
    /// a sample is accepted — zero-sample engines must never feed NaN
    /// into the repair/re-plan triggers.
    pub fn observed_rejection_rate(&self) -> Option<f64> {
        let st = self.state.read().expect("epoch state poisoned");
        let (cur_samples, cur_iterations) = st.current.sample_counters();
        let samples = st.acc_samples + cur_samples;
        let iterations = st.acc_iterations + cur_iterations;
        (samples > 0).then(|| iterations as f64 / samples as f64)
    }

    /// The planner's rejection-overhead estimate for this epoch, when
    /// the epoch was planner-built.
    pub fn planned_overhead(&self) -> Option<f64> {
        let st = self.state.read().expect("epoch state poisoned");
        st.has_plan.then_some(st.planned_overhead)
    }

    /// Epoch-wide per-cell rejection counters (accumulated across the
    /// epoch's overlay snapshots), or `None` when the serving index has
    /// no cell structure.
    pub fn cell_rejections(&self) -> Option<Vec<u64>> {
        let st = self.state.read().expect("epoch state poisoned");
        Self::merged_cell_rejections(&st)
    }

    fn merged_cell_rejections(st: &EpochState) -> Option<Vec<u64>> {
        let mut cur = st.current.cell_rejections()?;
        if cur.len() == st.acc_cell_rejections.len() {
            for (c, a) in cur.iter_mut().zip(&st.acc_cell_rejections) {
                *c += a;
            }
        }
        Some(cur)
    }

    /// `Σµ` of the engine currently serving.
    pub fn total_weight(&self) -> f64 {
        self.state
            .read()
            .expect("epoch state poisoned")
            .current
            .total_weight()
    }

    /// One mutually consistent maintenance snapshot, taken under a
    /// single state read lock.
    ///
    /// The per-field accessors ([`EpochEngine::total_weight`],
    /// [`EpochEngine::epoch`], [`EpochEngine::patch_swaps`], …) each
    /// take their own lock or atomic load, so a stats reader racing a
    /// swap could pair the *new* `Σµ` with the *old* swap counters
    /// (or vice versa). Swap commits bump their counters while still
    /// holding the state **write** lock, so everything read here under
    /// the read lock describes the same committed engine.
    pub fn maintenance_snapshot(&self) -> MaintenanceSnapshot {
        let st = self.state.read().expect("epoch state poisoned");
        let (buf_hits, buf_refills, buf_invalidations) = st.current.buffer_counters();
        MaintenanceSnapshot {
            epoch: st.built_epoch,
            mu_total: st.current.total_weight(),
            minor_swaps: self.minor_swaps.load(Ordering::Relaxed),
            major_swaps: self.major_swaps.load(Ordering::Relaxed),
            patch_swaps: self.patch_swaps.load(Ordering::Relaxed),
            cells_patched: self.cells_patched.load(Ordering::Relaxed),
            repairs: self.repairs.load(Ordering::Relaxed),
            replans: self.replans.load(Ordering::Relaxed),
            last_swap_ns: self.last_swap_ns.load(Ordering::Relaxed),
            buffer_hits: self.acc_buffer_hits.load(Ordering::Relaxed) + buf_hits,
            buffer_refills: self.acc_buffer_refills.load(Ordering::Relaxed) + buf_refills,
            buffer_invalidations: self.acc_buffer_invalidations.load(Ordering::Relaxed)
                + buf_invalidations,
        }
    }

    /// Minor swaps so far (overlay snapshot replaced).
    pub fn minor_swaps(&self) -> u64 {
        self.minor_swaps.load(Ordering::Relaxed)
    }

    /// Major swaps so far (epoch rebuilt: threshold, external
    /// compaction, or re-plan; includes patch-based swaps).
    pub fn major_swaps(&self) -> u64 {
        self.major_swaps.load(Ordering::Relaxed)
    }

    /// Major swaps that went through the cell-granular patch path (a
    /// strict subset of [`EpochEngine::major_swaps`]).
    pub fn patch_swaps(&self) -> u64 {
        self.patch_swaps.load(Ordering::Relaxed)
    }

    /// Total `S`-cells rebuilt by patch-based swaps (clean cells were
    /// `Arc`-shared and cost nothing).
    pub fn cells_patched(&self) -> u64 {
        self.cells_patched.load(Ordering::Relaxed)
    }

    /// Targeted cell repairs so far.
    pub fn repairs(&self) -> u64 {
        self.repairs.load(Ordering::Relaxed)
    }

    /// Re-plan hot-swaps so far.
    pub fn replans(&self) -> u64 {
        self.replans.load(Ordering::Relaxed)
    }

    /// Duration of the most recent swap (minor, patch, or full).
    pub fn last_swap(&self) -> Duration {
        Duration::from_nanos(self.last_swap_ns.load(Ordering::Relaxed))
    }

    /// What maintenance the cell needs, if any. Ladder order: drift
    /// first (cheapest correct answer), then repair, then re-plan.
    fn pending_maintenance(&self, st: &EpochState) -> Option<Maintenance> {
        if st.built_epoch != self.store.epoch() || st.built_version != self.store.version() {
            return Some(Maintenance::Drift);
        }
        if let Some(slots) = self.repair_target(st) {
            return Some(Maintenance::Repair(slots));
        }
        self.replan_target(st).map(Maintenance::Replan)
    }

    /// The epoch-wide `(samples, iterations)` pair (two relaxed loads
    /// plus the accumulators; runs on every handle acquisition).
    fn epoch_counters(st: &EpochState) -> (u64, u64) {
        let (cur_samples, cur_iterations) = st.current.sample_counters();
        (
            st.acc_samples + cur_samples,
            st.acc_iterations + cur_iterations,
        )
    }

    /// The loose cells a repair would re-tighten, when the observed
    /// overhead has diverged past the repair rung and the per-cell
    /// counters name concrete culprits.
    fn repair_target(&self, st: &EpochState) -> Option<Vec<u32>> {
        if st.repair_exhausted || st.current.is_overlay() {
            // Repairs apply to the epoch base; wait until pending
            // deltas fold (an overlay's rejections partly come from
            // tombstone filtering, not loose bounds).
            return None;
        }
        let (samples, iterations) = Self::epoch_counters(st);
        if samples == 0 || samples < self.cfg.replan_min_samples.max(1) {
            return None;
        }
        let observed = iterations as f64 / samples as f64;
        if observed <= st.planned_overhead * self.cfg.repair_factor {
            return None;
        }
        let rejections = Self::merged_cell_rejections(st)?;
        let slots = repair_candidates(&rejections, self.cfg.repair_min_cell_rejections);
        (!slots.is_empty()).then_some(slots)
    }

    /// The algorithm a re-plan would switch to, when the observed
    /// rejection overhead has diverged far enough to justify one and
    /// the repair rung is spent.
    fn replan_target(&self, st: &EpochState) -> Option<Algorithm> {
        if self.cfg.algorithm.is_some() {
            return None; // pinned
        }
        let (samples, iterations) = Self::epoch_counters(st);
        // Guard: a zero-sample epoch has no observation (the accessors
        // return None, never NaN) and must not trigger anything.
        if samples == 0 || samples < self.cfg.replan_min_samples.max(1) {
            return None;
        }
        let observed = iterations as f64 / samples as f64;
        if observed <= st.planned_overhead * self.cfg.replan_factor {
            return None;
        }
        let (algorithm, _) =
            replan_for_observed(self.store.live_r_len(), self.store.live_s_len(), observed);
        (algorithm != st.current.algorithm()).then_some(algorithm)
    }

    /// Brings the swap cell up to date with the store and the
    /// repair/re-plan signals. Called automatically by
    /// [`EpochEngine::handle`]; cheap (a few counter loads) when
    /// nothing is pending.
    pub fn refresh(&self) {
        {
            let st = self.state.read().expect("epoch state poisoned");
            if self.pending_maintenance(&st).is_none() {
                return;
            }
        }
        let _g = self.maintain.lock().expect("maintenance lock poisoned");
        // Re-check under the maintenance lock: another thread may have
        // already performed the swap.
        let work = {
            let st = self.state.read().expect("epoch state poisoned");
            match self.pending_maintenance(&st) {
                None => return,
                Some(w) => w,
            }
        };
        let t0 = Instant::now();
        match work {
            Maintenance::Replan(algorithm) => self.major_swap(Some(algorithm), true),
            Maintenance::Repair(slots) => self.repair_swap(&slots),
            Maintenance::Drift => {
                let epoch_changed = self.store.epoch()
                    != self.state.read().expect("epoch state poisoned").built_epoch;
                let rebuild = epoch_changed
                    || self.store.delta_fraction() >= self.cfg.rebuild_fraction
                    || self.store.tombstone_fraction() >= self.cfg.tombstone_rebuild_fraction;
                if rebuild {
                    self.major_swap(self.cfg.algorithm, false);
                } else {
                    self.minor_swap();
                }
            }
        }
        self.last_swap_ns.store(
            t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64,
            Ordering::Relaxed,
        );
    }

    /// Installs a freshly built epoch: base == current, accumulators
    /// reset, repair rung re-armed. Returns the still-held write
    /// guard so the caller can bump its swap counters before readers
    /// (e.g. [`EpochEngine::maintenance_snapshot`]) can observe the
    /// new state — a stats reader must never pair the new `Σµ` with
    /// the old counters.
    fn commit_epoch(
        &self,
        engine: Engine,
        snap: &DatasetSnapshot,
        planned: Option<f64>,
    ) -> std::sync::RwLockWriteGuard<'_, EpochState> {
        let cells = engine.cell_count();
        engine.set_buffers_enabled(self.buffers_enabled());
        let mut st = self.state.write().expect("epoch state poisoned");
        if !engine.shares_state(&st.current) {
            self.absorb_buffer_counters(&st.current);
        }
        st.base = engine.clone();
        st.base_s = Arc::clone(&snap.base_s);
        st.current = engine;
        st.support = None;
        st.built_epoch = snap.epoch;
        st.built_version = snap.version;
        st.planned_overhead = planned.unwrap_or(planner::MAX_REJECTION_OVERHEAD);
        st.has_plan = planned.is_some();
        st.acc_samples = 0;
        st.acc_iterations = 0;
        st.acc_cell_rejections = vec![0; cells];
        st.repair_exhausted = false;
        st
    }

    /// Major swap. When the algorithm is kept and the dirty-cell
    /// fraction fits the patch budget, the store folds **without
    /// renumbering `S`** ([`DatasetStore::compact_incremental`]) and
    /// the previous base's `S`-side is patched cell by cell (or
    /// `Arc`-reused outright when only `R` changed). Otherwise — or
    /// when a sibling engine compacted the store in between — the store
    /// fully compacts (purging dead ids) and everything rebuilds.
    fn major_swap(&self, forced: Option<Algorithm>, is_replan: bool) {
        let t0 = Instant::now();
        let (prev_base, prev_algorithm, prev_base_s) = {
            let st = self.state.read().expect("epoch state poisoned");
            (st.base.clone(), st.base.algorithm(), Arc::clone(&st.base_s))
        };
        let keep_algorithm = !is_replan && forced.is_none_or(|a| a == prev_algorithm);
        if keep_algorithm && self.try_patch_swap(&prev_base, &prev_base_s) {
            return;
        }
        // Full path: purge dead ids, renumber, rebuild from scratch.
        let mu_before = prev_base.total_weight();
        let (snap, _) = self.store.compact();
        let (engine, planned) = Self::build_base(&snap, &self.config, &self.cfg, forced);
        let mu_after = engine.total_weight();
        let st = self.commit_epoch(engine, &snap, planned);
        self.major_swaps.fetch_add(1, Ordering::Relaxed);
        if is_replan {
            self.replans.fetch_add(1, Ordering::Relaxed);
        }
        drop(st);
        event(if is_replan {
            EventKind::Replan
        } else {
            EventKind::FullRebuild
        })
        .dataset(self.store.obs_label())
        .epoch(snap.epoch)
        .duration_ns(t0.elapsed().as_nanos() as u64)
        .mu(mu_before, mu_after)
        .emit();
        if self.buffers_enabled() {
            event(EventKind::BufferInvalidate)
                .dataset(self.store.obs_label())
                .epoch(snap.epoch)
                .emit();
        }
    }

    /// The incremental half of [`EpochEngine::major_swap`]: `true` when
    /// the patch (or R-only) rebuild committed, `false` when the caller
    /// must fall back to the full path.
    fn try_patch_swap(&self, prev_base: &Engine, prev_base_s: &Arc<Vec<Point>>) -> bool {
        let t0 = Instant::now();
        if prev_base.is_overlay() {
            return false;
        }
        // Budget pre-check against the *current* pending delta.
        {
            let snap = self.store.snapshot();
            if !Arc::ptr_eq(&snap.base_s, prev_base_s) {
                return false; // sibling engine compacted underneath us
            }
            // Dead-id budget: every patch leaves its tombstones behind
            // as dead ids that only a full compaction purges. Without
            // this cap, a sustained churn workload would grow `base_s`
            // and the dead set without bound (and every later patch
            // would re-copy the ever-larger point array). Past the
            // budget, fall through to the full path — it purges.
            if snap.s_dead.len() as f64
                > self.cfg.max_patch_fraction * snap.base_s.len().max(1) as f64
            {
                return false;
            }
            let s_ops = !snap.delta.s_inserted.is_empty() || !snap.delta.s_deleted.is_empty();
            if s_ops {
                let total = prev_base.cell_count();
                if total == 0 {
                    return false;
                }
                let dirty = snap
                    .delta
                    .dirty_s_cells(&snap.base_s, self.config.half_extent)
                    .len();
                if dirty as f64 > self.cfg.max_patch_fraction * total as f64 {
                    return false; // too dirty: a full rebuild is cheaper
                }
            }
        }
        let (snap, spatch) = self.store.compact_incremental();
        if !Arc::ptr_eq(&spatch.prev_base_s, prev_base_s) {
            // Lost a race to a sibling's compaction between the check
            // and the fold; our S-side is not the patch's valid start.
            return false;
        }
        let built = if !spatch.s_changed() {
            // Only R changed: reuse the S-side allocation outright.
            prev_base
                .rebuild_r_only(&snap.base_r, &self.config)
                .map(|e| (e, None))
        } else {
            prev_base
                .rebuild_with_s_patch(
                    &snap.base_r,
                    &self.config,
                    &spatch.inserted,
                    &spatch.deleted,
                )
                .map(|(e, rep)| (e, Some(rep)))
        };
        let Some((engine, patch_report)) = built else {
            return false;
        };
        let mu_before = prev_base.total_weight();
        let mu_after = engine.total_weight();
        let cells_rebuilt = patch_report.as_ref().map_or(0, |rep| rep.cells_rebuilt);
        let st = self.commit_epoch(engine, &snap, None);
        self.major_swaps.fetch_add(1, Ordering::Relaxed);
        if let Some(rep) = patch_report {
            self.patch_swaps.fetch_add(1, Ordering::Relaxed);
            self.cells_patched
                .fetch_add(rep.cells_rebuilt as u64, Ordering::Relaxed);
        }
        drop(st);
        event(EventKind::CellPatch)
            .dataset(self.store.obs_label())
            .epoch(snap.epoch)
            .dirty_cells(cells_rebuilt as u64)
            .duration_ns(t0.elapsed().as_nanos() as u64)
            .mu(mu_before, mu_after)
            .emit();
        if self.buffers_enabled() {
            event(EventKind::BufferInvalidate)
                .dataset(self.store.obs_label())
                .epoch(snap.epoch)
                .emit();
        }
        true
    }

    /// Repair swap: re-tighten exactly the named cells over the fully
    /// shared `S`-side, swapping the re-bounded engine in place (same
    /// epoch, fresh observation window). A fruitless attempt retires
    /// the repair rung for this epoch so the ladder can escalate.
    fn repair_swap(&self, slots: &[u32]) {
        let t0 = Instant::now();
        let current = self
            .state
            .read()
            .expect("epoch state poisoned")
            .current
            .clone();
        match current.repair_cells(slots) {
            Some(engine) => {
                let mu_before = current.total_weight();
                let mu_after = engine.total_weight();
                let cells = engine.cell_count();
                engine.set_buffers_enabled(self.buffers_enabled());
                let mut st = self.state.write().expect("epoch state poisoned");
                if !engine.shares_state(&st.current) {
                    self.absorb_buffer_counters(&st.current);
                }
                let built_epoch = st.built_epoch;
                st.base = engine.clone();
                st.current = engine;
                st.support = None;
                // Fresh observation window: the repair changed the
                // rejection profile, so the old counters no longer
                // describe the serving engine.
                st.acc_samples = 0;
                st.acc_iterations = 0;
                st.acc_cell_rejections = vec![0; cells];
                self.repairs.fetch_add(1, Ordering::Relaxed);
                drop(st);
                event(EventKind::Repair)
                    .dataset(self.store.obs_label())
                    .epoch(built_epoch)
                    .dirty_cells(slots.len() as u64)
                    .duration_ns(t0.elapsed().as_nanos() as u64)
                    .mu(mu_before, mu_after)
                    .emit();
                if self.buffers_enabled() {
                    event(EventKind::BufferInvalidate)
                        .dataset(self.store.obs_label())
                        .epoch(built_epoch)
                        .emit();
                }
            }
            None => {
                // Nothing to tighten (wrong family, or all named cells
                // already exact): retire the rung for this epoch.
                self.state
                    .write()
                    .expect("epoch state poisoned")
                    .repair_exhausted = true;
            }
        }
    }

    /// Minor swap: a fresh `O(|delta|)` overlay snapshot over the
    /// epoch's unchanged base build.
    fn minor_swap(&self) {
        let t0 = Instant::now();
        let snap = self.store.snapshot();
        let (base, support, built_epoch) = {
            let st = self.state.read().expect("epoch state poisoned");
            (st.base.clone(), st.support.clone(), st.built_epoch)
        };
        if snap.epoch != built_epoch {
            // The store was compacted between decision and snapshot
            // (e.g. by a sibling engine sharing the store).
            return self.major_swap(self.cfg.algorithm, false);
        }
        let support = support.unwrap_or_else(|| {
            Arc::new(OverlaySupport::build_filtered(
                &snap.base_r,
                &snap.base_s,
                &snap.s_dead,
                self.config.half_extent,
            ))
        });
        let engine = if snap.delta.is_empty() {
            base.clone()
        } else {
            base.with_overlay(snap.delta.clone(), &support, &self.config)
        };
        let mut st = self.state.write().expect("epoch state poisoned");
        // Carry the superseded snapshot's counters into the epoch
        // accumulators so the repair/re-plan signals keep their
        // history.
        let (old_samples, old_iterations) = st.current.sample_counters();
        st.acc_samples += old_samples;
        st.acc_iterations += old_iterations;
        if let Some(old_cells) = st.current.cell_rejections() {
            if old_cells.len() == st.acc_cell_rejections.len() {
                for (a, c) in st.acc_cell_rejections.iter_mut().zip(&old_cells) {
                    *a += c;
                }
            }
        }
        let mu_before = st.current.total_weight();
        let mu_after = engine.total_weight();
        engine.set_buffers_enabled(self.buffers_enabled());
        let retired_buffers = if engine.shares_state(&st.current) {
            false
        } else {
            self.absorb_buffer_counters(&st.current)
        };
        st.current = engine;
        st.support = Some(support);
        st.built_version = snap.version;
        self.minor_swaps.fetch_add(1, Ordering::Relaxed);
        drop(st);
        event(EventKind::MinorSwap)
            .dataset(self.store.obs_label())
            .epoch(snap.epoch)
            .duration_ns(t0.elapsed().as_nanos() as u64)
            .mu(mu_before, mu_after)
            .emit();
        if retired_buffers {
            event(EventKind::BufferInvalidate)
                .dataset(self.store.obs_label())
                .epoch(snap.epoch)
                .emit();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srj_geom::Rect;

    fn pseudo_points(n: usize, seed: u64, extent: f64) -> Vec<Point> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| Point::new(next() * extent, next() * extent))
            .collect()
    }

    #[test]
    fn inserts_become_sampleable_without_a_rebuild() {
        let r = pseudo_points(60, 1, 50.0);
        let s = pseudo_points(80, 2, 50.0);
        let l = 5.0;
        let engine = EpochEngine::new(r, s, &SampleConfig::new(l), EpochConfig::default());
        assert_eq!(engine.epoch(), 0);

        // A far-away cluster only reachable through the new points.
        let rid = engine.insert_r(Point::new(500.0, 500.0));
        let sid = engine.insert_s(Point::new(501.0, 501.0));
        let mut h = engine.handle_seeded(7);
        assert_eq!(engine.epoch(), 0, "small delta must not rebuild");
        assert!(engine.engine().is_overlay());
        assert_eq!(engine.minor_swaps(), 1);

        let snap = engine.store().snapshot();
        let mut saw_new = false;
        for _ in 0..3_000 {
            let p = h.sample_one().unwrap();
            let rp = snap.r_point(p.r).unwrap();
            let sp = snap.s_point(p.s).unwrap();
            assert!(Rect::window(rp, l).contains(sp));
            saw_new |= p.r == rid && p.s == sid;
        }
        assert!(saw_new, "inserted pair never sampled");
    }

    #[test]
    fn deletes_stop_being_sampled_immediately() {
        let r = pseudo_points(40, 11, 30.0);
        let s = pseudo_points(60, 12, 30.0);
        let engine = EpochEngine::new(r, s, &SampleConfig::new(4.0), EpochConfig::default());
        assert!(engine.delete_r(0));
        assert!(engine.delete_s(3));
        let mut h = engine.handle_seeded(3);
        for _ in 0..2_000 {
            match h.sample_one() {
                Ok(p) => {
                    assert_ne!(p.r, 0, "tombstoned R point sampled");
                    assert_ne!(p.s, 3, "tombstoned S point sampled");
                }
                Err(_) => break, // join may be sparse; errors are fine here
            }
        }
    }

    #[test]
    fn threshold_triggers_a_major_swap_and_compaction() {
        let r = pseudo_points(40, 21, 30.0);
        let s = pseudo_points(40, 22, 30.0);
        let cfg = EpochConfig::default().with_rebuild_fraction(0.1);
        let engine = EpochEngine::new(r, s, &SampleConfig::new(4.0), cfg);
        for p in pseudo_points(20, 23, 30.0) {
            engine.insert_r(p);
        }
        engine.refresh();
        assert_eq!(engine.epoch(), 1, "threshold crossed: epoch must bump");
        assert_eq!(engine.major_swaps(), 1);
        assert!(!engine.engine().is_overlay(), "delta was folded in");
        assert_eq!(engine.store().pending_ops(), 0);
        assert_eq!(engine.store().live_r_len(), 60);
        // and it still serves
        assert!(engine.handle_seeded(1).sample(100).is_ok());
    }

    /// The one-lock snapshot pairs `Σµ` with the counters of the same
    /// committed state — racing swaps from another thread must never
    /// let a snapshot show a rebuilt epoch with pre-rebuild counters.
    #[test]
    fn maintenance_snapshot_is_mutually_consistent() {
        let r = pseudo_points(80, 51, 40.0);
        let s = pseudo_points(120, 52, 40.0);
        let cfg = EpochConfig::default()
            .with_rebuild_fraction(1e-4)
            .with_algorithm(Algorithm::Bbst);
        let engine = Arc::new(EpochEngine::new(r, s, &SampleConfig::new(5.0), cfg));
        assert_eq!(engine.maintenance_snapshot().major_swaps, 0);

        let mutator = {
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || {
                for i in 0..40 {
                    engine.insert_s(Point::new(i as f64 * 0.7, 3.0));
                    engine.refresh(); // every insert crosses the rebuild threshold
                }
            })
        };
        // Every observed snapshot whose epoch advanced must carry
        // advanced swap counters with it — the swap commit bumps them
        // under the same write lock that installs the new state.
        let mut last = engine.maintenance_snapshot();
        while !mutator.is_finished() {
            let snap = engine.maintenance_snapshot();
            assert!(snap.epoch >= last.epoch);
            assert!(snap.major_swaps >= last.major_swaps);
            if snap.epoch > last.epoch {
                assert!(
                    snap.major_swaps > last.major_swaps,
                    "epoch advanced {} -> {} without a counted swap",
                    last.epoch,
                    snap.epoch
                );
            }
            last = snap;
        }
        mutator.join().unwrap();
        let snap = engine.maintenance_snapshot();
        assert!(snap.major_swaps >= 1);
        assert_eq!(snap.epoch, engine.epoch());
        assert!((snap.mu_total - engine.total_weight()).abs() < 1e-9);
    }

    #[test]
    fn r_only_rebuild_reuses_the_s_side_arc() {
        let r = pseudo_points(60, 31, 40.0);
        let s = pseudo_points(2_000, 32, 40.0);
        let cfg = EpochConfig::default()
            .with_rebuild_fraction(1e-4) // one insert over the 2060-point base crosses it
            .with_algorithm(Algorithm::Bbst);
        let engine = EpochEngine::new(r, s.clone(), &SampleConfig::new(5.0), cfg);
        let before = engine.store().snapshot();
        engine.insert_r(Point::new(1.0, 1.0));
        engine.refresh();
        assert_eq!(engine.major_swaps(), 1);
        let after = engine.store().snapshot();
        // S untouched ⇒ the very same allocation crossed the epoch.
        assert!(Arc::ptr_eq(&before.base_s, &after.base_s));
        assert!(engine.handle_seeded(2).sample(50).is_ok());
    }

    #[test]
    fn tombstone_fraction_forces_a_shrinking_rebuild() {
        // Delete-only delta: the total pending fraction stays below the
        // general rebuild threshold, but the tombstone threshold fires
        // — and the rebuild strictly shrinks Σµ.
        let r = pseudo_points(100, 41, 30.0);
        let s = pseudo_points(100, 42, 30.0);
        let cfg = EpochConfig::default()
            .with_rebuild_fraction(0.5)
            .with_tombstone_rebuild_fraction(0.05)
            .with_algorithm(Algorithm::Bbst);
        let engine = EpochEngine::new(r, s, &SampleConfig::new(4.0), cfg);
        let mu_before = engine.total_weight();
        assert!(mu_before > 0.0);
        for id in 0..15u32 {
            assert!(engine.delete_s(id));
        }
        // 15 tombstones / 200 base = 0.075: above the tombstone
        // threshold, far below the 0.5 general one.
        engine.refresh();
        assert_eq!(engine.epoch(), 1, "tombstone threshold must rebuild");
        assert_eq!(engine.major_swaps(), 1);
        let mu_after = engine.total_weight();
        assert!(
            mu_after < mu_before,
            "Σµ must shrink across a delete-only rebuild: {mu_before} -> {mu_after}"
        );
        // The rebuild went through the cell patch path.
        assert_eq!(engine.patch_swaps(), 1);
        assert!(engine.cells_patched() > 0);
    }

    #[test]
    fn sustained_deletes_eventually_purge_dead_ids() {
        // Patch swaps leave dead ids behind; once they exceed the
        // patch budget's share of the base, the next major swap must
        // take the full path and purge them — otherwise churn grows
        // the base without bound.
        let r = pseudo_points(50, 81, 30.0);
        let s = pseudo_points(100, 82, 30.0);
        let cfg = EpochConfig::default()
            .with_tombstone_rebuild_fraction(0.02)
            .with_max_patch_fraction(0.5)
            .with_algorithm(Algorithm::Bbst);
        let engine = EpochEngine::new(r, s, &SampleConfig::new(4.0), cfg);
        let mut purged = false;
        for _round in 0..12 {
            // Tombstone 10 live S ids (skipping dead ones).
            let mut deleted = 0;
            let mut id = 0u32;
            while deleted < 10 && id < 200 {
                if engine.delete_s(id) {
                    deleted += 1;
                }
                id += 1;
            }
            if deleted == 0 {
                break; // S exhausted
            }
            engine.refresh();
            if engine.store().s_dead_len() == 0 && engine.major_swaps() > engine.patch_swaps() {
                purged = true;
                break;
            }
        }
        assert!(purged, "dead ids were never purged by a full swap");
        // The store shrank to the live set.
        assert_eq!(
            engine.store().snapshot().base_s.len(),
            engine.store().live_s_len()
        );
    }

    #[test]
    fn zero_sample_engines_never_replan() {
        let r = pseudo_points(30, 41, 30.0);
        let s = pseudo_points(30, 42, 30.0);
        let engine = EpochEngine::new(
            r,
            s,
            &SampleConfig::new(4.0),
            EpochConfig::default().with_replan_min_samples(0),
        );
        assert_eq!(engine.observed_rejection_rate(), None);
        engine.refresh();
        assert_eq!(engine.replans(), 0);
        assert_eq!(engine.repairs(), 0);
    }

    #[test]
    fn pinned_algorithm_is_never_replanned() {
        let r = pseudo_points(50, 51, 30.0);
        let s = pseudo_points(50, 52, 30.0);
        let cfg = EpochConfig::default()
            .with_algorithm(Algorithm::KdsRejection)
            .with_replan_min_samples(1);
        let engine = EpochEngine::new(r, s, &SampleConfig::new(4.0), cfg);
        engine.handle_seeded(1).sample(200).unwrap();
        engine.refresh();
        assert_eq!(engine.algorithm(), Algorithm::KdsRejection);
        assert_eq!(engine.replans(), 0);
    }
}
