//! Epoch-versioned serving over a mutable dataset, with
//! rejection-rate-driven re-planning.
//!
//! An [`EpochEngine`] wraps the immutable-engine machinery in an
//! atomic-swap cell over a [`DatasetStore`]:
//!
//! ```text
//!   DatasetStore (mutable R/S + DeltaSet + epoch/version counters)
//!        │ insert/delete (O(1) buffered)
//!        ▼
//!   EpochEngine ── swap cell ──► Engine (epoch e, full build)
//!        │                         ▲            │
//!        │ minor swap: delta       │            └─ in-flight
//!        │ overlay snapshot        │               SamplerHandles pin
//!        │ (O(|delta|))            │               their epoch via Arc
//!        │ major swap: compact + rebuild
//!        │ (S-side Arc-reused when only R changed)
//!        └─ re-plan swap: observed rejection_rate diverged from
//!           PlanReport::est_overhead → planner::replan_for_observed
//!           picks a new algorithm, hot-swapped through the same path
//! ```
//!
//! **Swap semantics.** Handles pin their engine through an `Arc`: a
//! swap never interrupts an in-flight handle — it finishes (and keeps
//! recording stats) against the epoch it started on, while every
//! *new* handle sees the freshly swapped engine. Refresh is **lazy**:
//! mutations only buffer into the store; the first
//! [`EpochEngine::handle`] after a mutation pays the swap (an
//! `O(|delta|)` overlay snapshot, or a rebuild once the pending delta
//! exceeds [`EpochConfig::rebuild_fraction`] of the base).
//!
//! **Re-planning.** The serving-time rejection overhead
//! (`iterations / samples`, accumulated across the epoch's overlay
//! snapshots) is compared against the build-time estimate
//! `PlanReport::est_overhead`. When the observation exceeds the
//! estimate by [`EpochConfig::replan_factor`] — the §III-B bounds
//! turned out loose, e.g. after skewed inserts — the engine re-plans
//! via [`crate::planner::replan_for_observed`] and hot-swaps the new
//! algorithm through a major epoch swap. Zero-sample engines never
//! trigger (the rate accessors return `None`, not NaN).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

use srj_core::{OverlaySupport, SampleConfig};
use srj_geom::{Point, PointId};

use crate::dataset::{DatasetSnapshot, DatasetStore};
use crate::planner::{self, replan_for_observed};
use crate::stats::StatsSnapshot;
use crate::{Algorithm, Engine, SamplerHandle};

/// Knobs for the epoch/re-plan machinery.
#[derive(Clone, Copy, Debug)]
pub struct EpochConfig {
    /// Major-rebuild threshold: compact and rebuild once pending
    /// mutations exceed this fraction of the base snapshot size.
    /// Default 0.25.
    pub rebuild_fraction: f64,
    /// Re-plan when the observed rejection overhead exceeds the
    /// planned estimate by this factor. Default 2.0.
    pub replan_factor: f64,
    /// Minimum accepted samples (per epoch) before the re-plan trigger
    /// is considered — avoids deciding on noise. Default 1024.
    pub replan_min_samples: u64,
    /// `R`-shard count for every build (see [`Engine::build_sharded`]).
    /// Default 1.
    pub shards: usize,
    /// Pinned algorithm, or `None` for planner choice + adaptive
    /// re-planning (a pinned algorithm is never re-planned away).
    pub algorithm: Option<Algorithm>,
}

impl Default for EpochConfig {
    fn default() -> Self {
        EpochConfig {
            rebuild_fraction: 0.25,
            replan_factor: 2.0,
            replan_min_samples: 1024,
            shards: 1,
            algorithm: None,
        }
    }
}

impl EpochConfig {
    /// Overrides the rebuild threshold.
    pub fn with_rebuild_fraction(mut self, fraction: f64) -> Self {
        assert!(fraction > 0.0, "rebuild fraction must be positive");
        self.rebuild_fraction = fraction;
        self
    }

    /// Overrides the re-plan divergence factor.
    pub fn with_replan_factor(mut self, factor: f64) -> Self {
        assert!(factor >= 1.0, "replan factor must be >= 1");
        self.replan_factor = factor;
        self
    }

    /// Overrides the re-plan warm-up sample count.
    pub fn with_replan_min_samples(mut self, samples: u64) -> Self {
        self.replan_min_samples = samples;
        self
    }

    /// Sets the shard topology.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Pins the serving algorithm (disables re-planning).
    pub fn with_algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = Some(algorithm);
        self
    }
}

/// What the swap cell currently serves.
struct EpochState {
    /// The epoch's full (non-overlay) build — overlay snapshots stack
    /// on this, and R-only rebuilds harvest its `S`-side structures.
    base: Engine,
    /// The exact `S` allocation `base` was built over. A rebuild may
    /// only reuse `base`'s `S`-side structures when the store still
    /// serves this very allocation ([`DatasetStore::compact`] keeps
    /// the `Arc` whenever `S` is untouched) — a version/flag check is
    /// not enough, because a sibling engine sharing the store may have
    /// compacted an `S` mutation in between.
    base_s: Arc<Vec<Point>>,
    /// What new handles get: `base`, or an overlay snapshot over it.
    current: Engine,
    /// Per-epoch overlay support grids, built lazily on the first
    /// mutation of the epoch and shared by all its snapshots.
    support: Option<Arc<OverlaySupport>>,
    built_epoch: u64,
    built_version: u64,
    /// The planner's `Σµ/|Ĵ|` estimate for this epoch (`None` after a
    /// forced/re-planned/R-only build — the absolute
    /// [`planner::MAX_REJECTION_OVERHEAD`] baseline applies then).
    planned_overhead: f64,
    has_plan: bool,
    /// Stats carried over from this epoch's superseded overlay
    /// snapshots (their engines got fresh counters), so the re-plan
    /// signal sees the whole epoch.
    acc_samples: u64,
    acc_iterations: u64,
}

enum Maintenance {
    /// Store drifted: refresh the snapshot (minor or major per the
    /// rebuild threshold).
    Drift,
    /// Observed rejection overhead diverged: hot-swap to this
    /// algorithm.
    Replan(Algorithm),
}

/// Epoch-versioned engine over a [`DatasetStore`]: lazy overlay/rebuild
/// swaps plus rejection-rate-driven re-planning. See the module docs.
///
/// `Send + Sync`; share one behind an `Arc`. Reads (issuing handles)
/// take a short read lock; a needed swap is serialised on a
/// maintenance mutex and paid by the first caller that observes the
/// drift.
pub struct EpochEngine {
    store: Arc<DatasetStore>,
    config: SampleConfig,
    cfg: EpochConfig,
    state: RwLock<EpochState>,
    maintain: Mutex<()>,
    minor_swaps: AtomicU64,
    major_swaps: AtomicU64,
    replans: AtomicU64,
    last_swap_ns: AtomicU64,
}

const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<EpochEngine>();
};

impl EpochEngine {
    /// Builds the first epoch over a fresh store holding `(r, s)`.
    pub fn new(r: Vec<Point>, s: Vec<Point>, config: &SampleConfig, cfg: EpochConfig) -> Self {
        Self::with_store(Arc::new(DatasetStore::new(r, s)), config, cfg)
    }

    /// Builds the first epoch over an existing (possibly shared and
    /// already mutated) store. Multiple epoch engines — e.g. one per
    /// window size `l` — may share one store; each maintains its own
    /// swap cell and refreshes independently.
    pub fn with_store(store: Arc<DatasetStore>, config: &SampleConfig, cfg: EpochConfig) -> Self {
        let snap = store.snapshot();
        let (base, planned) = Self::build_base(&snap, config, &cfg, cfg.algorithm);
        let mut state = EpochState {
            current: base.clone(),
            base,
            base_s: Arc::clone(&snap.base_s),
            support: None,
            built_epoch: snap.epoch,
            built_version: snap.version,
            planned_overhead: planned.unwrap_or(planner::MAX_REJECTION_OVERHEAD),
            has_plan: planned.is_some(),
            acc_samples: 0,
            acc_iterations: 0,
        };
        if !snap.delta.is_empty() {
            // The store already carried mutations: serve them through
            // an overlay from the start.
            let support = Arc::new(OverlaySupport::build(
                &snap.base_r,
                &snap.base_s,
                config.half_extent,
            ));
            state.current = state
                .base
                .with_overlay(snap.delta.clone(), &support, config);
            state.support = Some(support);
        }
        EpochEngine {
            store,
            config: *config,
            cfg,
            state: RwLock::new(state),
            maintain: Mutex::new(()),
            minor_swaps: AtomicU64::new(0),
            major_swaps: AtomicU64::new(0),
            replans: AtomicU64::new(0),
            last_swap_ns: AtomicU64::new(0),
        }
    }

    fn build_base(
        snap: &DatasetSnapshot,
        config: &SampleConfig,
        cfg: &EpochConfig,
        forced: Option<Algorithm>,
    ) -> (Engine, Option<f64>) {
        match forced {
            Some(a) => (
                Engine::build_sharded(&snap.base_r, &snap.base_s, config, a, cfg.shards),
                None,
            ),
            None => {
                let e = Engine::auto_sharded(&snap.base_r, &snap.base_s, config, cfg.shards);
                let planned = e.plan().and_then(|p| p.est_overhead);
                (e, planned)
            }
        }
    }

    /// The shared mutable dataset.
    pub fn store(&self) -> &Arc<DatasetStore> {
        &self.store
    }

    /// Inserts an `R` point (buffered; served by the next refresh).
    pub fn insert_r(&self, p: Point) -> PointId {
        self.store.insert_r(p)
    }

    /// Inserts an `S` point.
    pub fn insert_s(&self, p: Point) -> PointId {
        self.store.insert_s(p)
    }

    /// Tombstones an `R` point by id.
    pub fn delete_r(&self, id: PointId) -> bool {
        self.store.delete_r(id)
    }

    /// Tombstones an `S` point by id.
    pub fn delete_s(&self, id: PointId) -> bool {
        self.store.delete_s(id)
    }

    /// A serving handle over the **current** dataset state (refreshing
    /// the swap cell first if mutations or a re-plan are due). The
    /// handle pins its epoch: later swaps never interrupt it.
    pub fn handle(&self) -> SamplerHandle {
        self.refresh();
        self.state
            .read()
            .expect("epoch state poisoned")
            .current
            .handle()
    }

    /// Like [`EpochEngine::handle`] with a fixed RNG seed.
    pub fn handle_seeded(&self, seed: u64) -> SamplerHandle {
        self.refresh();
        self.state
            .read()
            .expect("epoch state poisoned")
            .current
            .handle_seeded(seed)
    }

    /// The engine currently in the swap cell (O(1) `Arc` clone; does
    /// **not** refresh first — pair with [`EpochEngine::refresh`] when
    /// pending mutations must be visible).
    pub fn engine(&self) -> Engine {
        self.state
            .read()
            .expect("epoch state poisoned")
            .current
            .clone()
    }

    /// The algorithm currently serving.
    pub fn algorithm(&self) -> Algorithm {
        self.state
            .read()
            .expect("epoch state poisoned")
            .current
            .algorithm()
    }

    /// The epoch the swap cell serves (trails
    /// [`DatasetStore::epoch`] until the next refresh).
    pub fn epoch(&self) -> u64 {
        self.state.read().expect("epoch state poisoned").built_epoch
    }

    /// Statistics of the current engine (per overlay snapshot; see
    /// [`EpochEngine::observed_rejection_rate`] for the epoch-wide
    /// signal).
    pub fn stats(&self) -> StatsSnapshot {
        self.state
            .read()
            .expect("epoch state poisoned")
            .current
            .stats()
    }

    /// Epoch-wide observed rejection overhead `iterations / samples`,
    /// accumulated across the epoch's overlay snapshots. `None` until
    /// a sample is accepted — zero-sample engines must never feed NaN
    /// into the re-plan trigger.
    pub fn observed_rejection_rate(&self) -> Option<f64> {
        let st = self.state.read().expect("epoch state poisoned");
        let (cur_samples, cur_iterations) = st.current.sample_counters();
        let samples = st.acc_samples + cur_samples;
        let iterations = st.acc_iterations + cur_iterations;
        (samples > 0).then(|| iterations as f64 / samples as f64)
    }

    /// The planner's rejection-overhead estimate for this epoch, when
    /// the epoch was planner-built.
    pub fn planned_overhead(&self) -> Option<f64> {
        let st = self.state.read().expect("epoch state poisoned");
        st.has_plan.then_some(st.planned_overhead)
    }

    /// Minor swaps so far (overlay snapshot replaced).
    pub fn minor_swaps(&self) -> u64 {
        self.minor_swaps.load(Ordering::Relaxed)
    }

    /// Major swaps so far (epoch rebuilt: threshold, external
    /// compaction, or re-plan).
    pub fn major_swaps(&self) -> u64 {
        self.major_swaps.load(Ordering::Relaxed)
    }

    /// Re-plan hot-swaps so far.
    pub fn replans(&self) -> u64 {
        self.replans.load(Ordering::Relaxed)
    }

    /// Duration of the most recent swap (minor or major).
    pub fn last_swap(&self) -> Duration {
        Duration::from_nanos(self.last_swap_ns.load(Ordering::Relaxed))
    }

    /// What maintenance the cell needs, if any.
    fn pending_maintenance(&self, st: &EpochState) -> Option<Maintenance> {
        if st.built_epoch != self.store.epoch() || st.built_version != self.store.version() {
            return Some(Maintenance::Drift);
        }
        self.replan_target(st).map(Maintenance::Replan)
    }

    /// The algorithm a re-plan would switch to, when the observed
    /// rejection overhead has diverged far enough to justify one.
    fn replan_target(&self, st: &EpochState) -> Option<Algorithm> {
        if self.cfg.algorithm.is_some() {
            return None; // pinned
        }
        // Two relaxed loads, not a full stats snapshot: this runs on
        // every handle acquisition.
        let (cur_samples, cur_iterations) = st.current.sample_counters();
        let samples = st.acc_samples + cur_samples;
        let iterations = st.acc_iterations + cur_iterations;
        // Guard: a zero-sample epoch has no observation (the accessors
        // return None, never NaN) and must not trigger anything.
        if samples == 0 || samples < self.cfg.replan_min_samples.max(1) {
            return None;
        }
        let observed = iterations as f64 / samples as f64;
        if observed <= st.planned_overhead * self.cfg.replan_factor {
            return None;
        }
        let (algorithm, _) =
            replan_for_observed(self.store.live_r_len(), self.store.live_s_len(), observed);
        (algorithm != st.current.algorithm()).then_some(algorithm)
    }

    /// Brings the swap cell up to date with the store and the re-plan
    /// signal. Called automatically by [`EpochEngine::handle`]; cheap
    /// (two counter loads) when nothing is pending.
    pub fn refresh(&self) {
        {
            let st = self.state.read().expect("epoch state poisoned");
            if self.pending_maintenance(&st).is_none() {
                return;
            }
        }
        let _g = self.maintain.lock().expect("maintenance lock poisoned");
        // Re-check under the maintenance lock: another thread may have
        // already performed the swap.
        let work = {
            let st = self.state.read().expect("epoch state poisoned");
            match self.pending_maintenance(&st) {
                None => return,
                Some(w) => w,
            }
        };
        let t0 = Instant::now();
        match work {
            Maintenance::Replan(algorithm) => self.major_swap(Some(algorithm), true),
            Maintenance::Drift => {
                let epoch_changed = self.store.epoch()
                    != self.state.read().expect("epoch state poisoned").built_epoch;
                if epoch_changed || self.store.delta_fraction() >= self.cfg.rebuild_fraction {
                    self.major_swap(self.cfg.algorithm, false);
                } else {
                    self.minor_swap();
                }
            }
        }
        self.last_swap_ns.store(
            t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64,
            Ordering::Relaxed,
        );
    }

    /// Major swap: compact the store (folding the delta, bumping the
    /// epoch) and rebuild — through [`Engine::rebuild_r_only`] when `S`
    /// is untouched and the algorithm is kept, so the `Arc`-shared
    /// `S`-side structures of the previous epoch carry over and the
    /// swap costs only the `R`-side build.
    fn major_swap(&self, forced: Option<Algorithm>, is_replan: bool) {
        let (snap, _) = self.store.compact();
        let (prev_base, prev_algorithm, prev_base_s) = {
            let st = self.state.read().expect("epoch state poisoned");
            (st.base.clone(), st.base.algorithm(), Arc::clone(&st.base_s))
        };
        // Reuse is sound only if the store still serves the exact S
        // allocation the previous base was built over (see the
        // `EpochState::base_s` docs for why the compact's own flag is
        // not enough).
        let reuse_s_side =
            Arc::ptr_eq(&snap.base_s, &prev_base_s) && forced.is_none_or(|a| a == prev_algorithm);
        let (engine, planned) = if reuse_s_side {
            match prev_base.rebuild_r_only(&snap.base_r, &self.config) {
                Some(e) => (e, None),
                None => Self::build_base(&snap, &self.config, &self.cfg, forced),
            }
        } else {
            Self::build_base(&snap, &self.config, &self.cfg, forced)
        };
        let mut st = self.state.write().expect("epoch state poisoned");
        st.base = engine.clone();
        st.base_s = Arc::clone(&snap.base_s);
        st.current = engine;
        st.support = None;
        st.built_epoch = snap.epoch;
        st.built_version = snap.version;
        st.planned_overhead = planned.unwrap_or(planner::MAX_REJECTION_OVERHEAD);
        st.has_plan = planned.is_some();
        st.acc_samples = 0;
        st.acc_iterations = 0;
        drop(st);
        self.major_swaps.fetch_add(1, Ordering::Relaxed);
        if is_replan {
            self.replans.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Minor swap: a fresh `O(|delta|)` overlay snapshot over the
    /// epoch's unchanged base build.
    fn minor_swap(&self) {
        let snap = self.store.snapshot();
        let (base, support, built_epoch) = {
            let st = self.state.read().expect("epoch state poisoned");
            (st.base.clone(), st.support.clone(), st.built_epoch)
        };
        if snap.epoch != built_epoch {
            // The store was compacted between decision and snapshot
            // (e.g. by a sibling engine sharing the store).
            return self.major_swap(self.cfg.algorithm, false);
        }
        let support = support.unwrap_or_else(|| {
            Arc::new(OverlaySupport::build(
                &snap.base_r,
                &snap.base_s,
                self.config.half_extent,
            ))
        });
        let engine = if snap.delta.is_empty() {
            base.clone()
        } else {
            base.with_overlay(snap.delta.clone(), &support, &self.config)
        };
        let mut st = self.state.write().expect("epoch state poisoned");
        // Carry the superseded snapshot's counters into the epoch
        // accumulator so the re-plan signal keeps its history.
        let (old_samples, old_iterations) = st.current.sample_counters();
        st.acc_samples += old_samples;
        st.acc_iterations += old_iterations;
        st.current = engine;
        st.support = Some(support);
        st.built_version = snap.version;
        drop(st);
        self.minor_swaps.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srj_geom::Rect;

    fn pseudo_points(n: usize, seed: u64, extent: f64) -> Vec<Point> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| Point::new(next() * extent, next() * extent))
            .collect()
    }

    #[test]
    fn inserts_become_sampleable_without_a_rebuild() {
        let r = pseudo_points(60, 1, 50.0);
        let s = pseudo_points(80, 2, 50.0);
        let l = 5.0;
        let engine = EpochEngine::new(r, s, &SampleConfig::new(l), EpochConfig::default());
        assert_eq!(engine.epoch(), 0);

        // A far-away cluster only reachable through the new points.
        let rid = engine.insert_r(Point::new(500.0, 500.0));
        let sid = engine.insert_s(Point::new(501.0, 501.0));
        let mut h = engine.handle_seeded(7);
        assert_eq!(engine.epoch(), 0, "small delta must not rebuild");
        assert!(engine.engine().is_overlay());
        assert_eq!(engine.minor_swaps(), 1);

        let snap = engine.store().snapshot();
        let mut saw_new = false;
        for _ in 0..3_000 {
            let p = h.sample_one().unwrap();
            let rp = snap.r_point(p.r).unwrap();
            let sp = snap.s_point(p.s).unwrap();
            assert!(Rect::window(rp, l).contains(sp));
            saw_new |= p.r == rid && p.s == sid;
        }
        assert!(saw_new, "inserted pair never sampled");
    }

    #[test]
    fn deletes_stop_being_sampled_immediately() {
        let r = pseudo_points(40, 11, 30.0);
        let s = pseudo_points(60, 12, 30.0);
        let engine = EpochEngine::new(r, s, &SampleConfig::new(4.0), EpochConfig::default());
        assert!(engine.delete_r(0));
        assert!(engine.delete_s(3));
        let mut h = engine.handle_seeded(3);
        for _ in 0..2_000 {
            match h.sample_one() {
                Ok(p) => {
                    assert_ne!(p.r, 0, "tombstoned R point sampled");
                    assert_ne!(p.s, 3, "tombstoned S point sampled");
                }
                Err(_) => break, // join may be sparse; errors are fine here
            }
        }
    }

    #[test]
    fn threshold_triggers_a_major_swap_and_compaction() {
        let r = pseudo_points(40, 21, 30.0);
        let s = pseudo_points(40, 22, 30.0);
        let cfg = EpochConfig::default().with_rebuild_fraction(0.1);
        let engine = EpochEngine::new(r, s, &SampleConfig::new(4.0), cfg);
        for p in pseudo_points(20, 23, 30.0) {
            engine.insert_r(p);
        }
        engine.refresh();
        assert_eq!(engine.epoch(), 1, "threshold crossed: epoch must bump");
        assert_eq!(engine.major_swaps(), 1);
        assert!(!engine.engine().is_overlay(), "delta was folded in");
        assert_eq!(engine.store().pending_ops(), 0);
        assert_eq!(engine.store().live_r_len(), 60);
        // and it still serves
        assert!(engine.handle_seeded(1).sample(100).is_ok());
    }

    #[test]
    fn r_only_rebuild_reuses_the_s_side_arc() {
        let r = pseudo_points(60, 31, 40.0);
        let s = pseudo_points(2_000, 32, 40.0);
        let cfg = EpochConfig::default()
            .with_rebuild_fraction(1e-4) // one insert over the 2060-point base crosses it
            .with_algorithm(Algorithm::Bbst);
        let engine = EpochEngine::new(r, s.clone(), &SampleConfig::new(5.0), cfg);
        let before = engine.store().snapshot();
        engine.insert_r(Point::new(1.0, 1.0));
        engine.refresh();
        assert_eq!(engine.major_swaps(), 1);
        let after = engine.store().snapshot();
        // S untouched ⇒ the very same allocation crossed the epoch.
        assert!(Arc::ptr_eq(&before.base_s, &after.base_s));
        assert!(engine.handle_seeded(2).sample(50).is_ok());
    }

    #[test]
    fn zero_sample_engines_never_replan() {
        let r = pseudo_points(30, 41, 30.0);
        let s = pseudo_points(30, 42, 30.0);
        let engine = EpochEngine::new(
            r,
            s,
            &SampleConfig::new(4.0),
            EpochConfig::default().with_replan_min_samples(0),
        );
        assert_eq!(engine.observed_rejection_rate(), None);
        engine.refresh();
        assert_eq!(engine.replans(), 0);
    }

    #[test]
    fn pinned_algorithm_is_never_replanned() {
        let r = pseudo_points(50, 51, 30.0);
        let s = pseudo_points(50, 52, 30.0);
        let cfg = EpochConfig::default()
            .with_algorithm(Algorithm::KdsRejection)
            .with_replan_min_samples(1);
        let engine = EpochEngine::new(r, s, &SampleConfig::new(4.0), cfg);
        engine.handle_seeded(1).sample(200).unwrap();
        engine.refresh();
        assert_eq!(engine.algorithm(), Algorithm::KdsRejection);
        assert_eq!(engine.replans(), 0);
    }
}
