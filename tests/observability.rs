//! Lifecycle journal coverage: driving one engine up each maintenance
//! rung — minor swap, cell patch, targeted repair, re-plan — must land
//! exactly the expected event kinds, in order, in the process-global
//! journal, labelled with the store's dataset id and timestamped
//! monotonically.
//!
//! Everything lives in ONE test function: the journal is a process
//! singleton, so a single sequential driver is the only way to assert
//! exact per-dataset sequences without cross-test interleaving.

use srj::{Algorithm, EpochConfig, EpochEngine, EventKind, Point, SampleConfig};

fn pseudo_points(n: usize, seed: u64, extent: f64) -> Vec<Point> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n)
        .map(|_| Point::new(next() * extent, next() * extent))
        .collect()
}

fn kinds_for(dataset: u64) -> Vec<EventKind> {
    srj::obs::journal::journal()
        .for_dataset(dataset)
        .iter()
        .map(|e| e.kind)
        .collect()
}

#[test]
fn maintenance_ladder_journals_expected_event_sequence() {
    // --- Rung 1 + 2: minor swap, then a cell-patch epoch swap --------
    //
    // rebuild_fraction 0.01 over a 680-point base: one pending insert
    // (fraction ~0.0015) stays below the threshold and overlays; nine
    // pending inserts (~0.013) cross it. All nine land in one corner,
    // so the swap takes the cell-patch path (dirty cells << the 50%
    // patch budget) — and the incremental compaction it rides on
    // journals a Compaction first.
    let l = 5.0;
    let engine = EpochEngine::new(
        pseudo_points(80, 900, 60.0),
        pseudo_points(600, 901, 60.0),
        &SampleConfig::new(l),
        EpochConfig::default()
            .with_algorithm(Algorithm::Bbst)
            .with_rebuild_fraction(0.01),
    );
    engine.store().set_obs_label(9101);

    engine.insert_s(Point::new(1.0, 1.0));
    engine.refresh();
    assert_eq!(engine.minor_swaps(), 1, "one insert must overlay");
    // Buffers are on by default, so every swap that retires an armed
    // engine journals a BufferInvalidate right after its swap event.
    assert_eq!(
        kinds_for(9101),
        vec![EventKind::MinorSwap, EventKind::BufferInvalidate]
    );

    for i in 0..8 {
        engine.insert_s(Point::new(1.0 + 0.1 * i as f64, 1.5));
    }
    engine.refresh();
    assert_eq!(engine.patch_swaps(), 1, "corner delta must patch-swap");
    assert_eq!(
        kinds_for(9101),
        vec![
            EventKind::MinorSwap,
            EventKind::BufferInvalidate,
            EventKind::Compaction,
            EventKind::CellPatch,
            EventKind::BufferInvalidate
        ],
        "a patch swap rides an incremental compaction"
    );

    // --- Rung 3: targeted repair (the cell_patching.rs harness) ------
    //
    // r_i at a cell center, its only partner s_i diagonally 0.8l away
    // in the corner cell: 1-point cells whose Virtual bounds are the
    // full bucket capacity, so sampling racks up attributable per-cell
    // rejections and the next refresh repairs in place (same epoch, no
    // compaction, no swap).
    let n = 25usize;
    let mut r = Vec::new();
    let mut s = Vec::new();
    for i in 0..n {
        let x = (5 * i) as f64 * l + 0.5 * l;
        let y = 0.5 * l;
        r.push(Point::new(x, y));
        s.push(Point::new(x + 0.8 * l, y + 0.8 * l));
    }
    let repair_engine = EpochEngine::new(
        r,
        s,
        &SampleConfig::new(l),
        EpochConfig::default()
            .with_algorithm(Algorithm::Bbst)
            .with_repair_factor(1.0)
            .with_replan_min_samples(256)
            .with_repair_min_cell_rejections(8),
    );
    repair_engine.store().set_obs_label(9102);
    repair_engine.handle_seeded(11).sample(4_000).unwrap();
    repair_engine.refresh();
    assert_eq!(repair_engine.repairs(), 1, "feedback must trigger repair");
    assert_eq!(
        kinds_for(9102),
        vec![EventKind::Repair, EventKind::BufferInvalidate]
    );
    let repair = srj::obs::journal::journal().for_dataset(9102)[0].clone();
    assert!(repair.dirty_cells > 0, "repair must name its cells");
    assert!(
        repair.mu_after < repair.mu_before,
        "exact-mass repair must tighten recorded Σµ: {} -> {}",
        repair.mu_before,
        repair.mu_after
    );

    // --- Rung 4: re-plan (the dynamic_updates.rs divergence) ---------
    //
    // Dense uniform workload: the planner picks KDS-rejection. A
    // far-away near-miss cluster (every inserted S point 1.9l diagonal
    // from its R partner: inside the 3x3 block, outside every window)
    // first overlays (0.75 pending < 0.8 threshold ⇒ MinorSwap), then
    // sampling observes the divergence and the next refresh re-plans —
    // a full rebuild over a full compaction.
    let l2 = 10.0;
    let replan_engine = EpochEngine::new(
        pseudo_points(4_000, 961, 100.0),
        pseudo_points(4_000, 962, 100.0),
        &SampleConfig::new(l2),
        EpochConfig::default()
            .with_rebuild_fraction(0.8)
            .with_replan_min_samples(500),
    );
    replan_engine.store().set_obs_label(9103);
    assert_eq!(replan_engine.algorithm(), Algorithm::KdsRejection);
    for i in 0..3_000u64 {
        let x = 1_000.0 + (i % 50) as f64 * 3.0 * l2;
        let y = 1_000.0 + (i / 50) as f64 * 3.0 * l2;
        replan_engine.insert_r(Point::new(x, y));
        replan_engine.insert_s(Point::new(x + 1.9 * l2, y + 1.9 * l2));
    }
    replan_engine.handle_seeded(4).sample(2_000).unwrap();
    replan_engine.refresh();
    assert_eq!(replan_engine.replans(), 1, "divergence must re-plan");
    assert_eq!(replan_engine.algorithm(), Algorithm::Bbst);
    assert_eq!(
        kinds_for(9103),
        vec![
            EventKind::MinorSwap,
            EventKind::BufferInvalidate,
            EventKind::Compaction,
            EventKind::Replan,
            EventKind::BufferInvalidate
        ],
        "a re-plan rides a full compaction"
    );

    // --- The whole ladder, interleaved ------------------------------
    //
    // The engines above were driven strictly in sequence, so the
    // global journal must hold their events in exactly that order,
    // with strictly monotone sequence numbers and non-decreasing
    // timestamps.
    let all: Vec<_> = srj::obs::journal::journal()
        .recent(4096)
        .into_iter()
        .filter(|e| matches!(e.dataset, Some(9101..=9103)))
        .collect();
    let ladder: Vec<(Option<u64>, EventKind)> = all.iter().map(|e| (e.dataset, e.kind)).collect();
    assert_eq!(
        ladder,
        vec![
            (Some(9101), EventKind::MinorSwap),
            (Some(9101), EventKind::BufferInvalidate),
            (Some(9101), EventKind::Compaction),
            (Some(9101), EventKind::CellPatch),
            (Some(9101), EventKind::BufferInvalidate),
            (Some(9102), EventKind::Repair),
            (Some(9102), EventKind::BufferInvalidate),
            (Some(9103), EventKind::MinorSwap),
            (Some(9103), EventKind::BufferInvalidate),
            (Some(9103), EventKind::Compaction),
            (Some(9103), EventKind::Replan),
            (Some(9103), EventKind::BufferInvalidate),
        ]
    );
    assert!(
        all.windows(2).all(|w| w[0].seq < w[1].seq),
        "sequence numbers must be strictly monotone"
    );
    assert!(
        all.windows(2).all(|w| w[0].ns <= w[1].ns),
        "timestamps must be non-decreasing"
    );
}
