//! Integration tests for the `srj-engine` serving subsystem: the
//! build-once/serve-many contract under real threads, and statistical
//! uniformity when samples are drawn through the engine path (mirroring
//! `tests/uniformity.rs` for the single-threaded samplers).

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::thread;

use srj::{Algorithm, Engine, JoinPair, Point, Rect, SampleConfig};

fn pseudo_points(n: usize, seed: u64, extent: f64) -> Vec<Point> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n)
        .map(|_| Point::new(next() * extent, next() * extent))
        .collect()
}

/// ≥ 4 threads share one engine built once; every draw must be a
/// genuine join pair and every per-thread stream must be reproducible
/// under its fixed seed.
#[test]
fn concurrent_threads_share_one_engine() {
    const THREADS: u64 = 8;
    const PER_THREAD: usize = 2_000;

    let r = pseudo_points(300, 1, 80.0);
    let s = pseudo_points(500, 2, 80.0);
    let l = 6.0;
    let cfg = SampleConfig::new(l);

    for algo in [Algorithm::Kds, Algorithm::KdsRejection, Algorithm::Bbst] {
        let engine = Arc::new(Engine::build(&r, &s, &cfg, algo));

        let run_all = |engine: &Arc<Engine>| -> Vec<Vec<JoinPair>> {
            let mut joins = Vec::new();
            thread::scope(|scope| {
                let handles: Vec<_> = (0..THREADS)
                    .map(|tid| {
                        let engine = Arc::clone(engine);
                        scope.spawn(move || {
                            let mut h = engine.handle_seeded(0xFEED ^ tid);
                            h.sample(PER_THREAD).expect("non-empty join must sample")
                        })
                    })
                    .collect();
                joins = handles.into_iter().map(|h| h.join().unwrap()).collect();
            });
            joins
        };

        let first = run_all(&engine);
        // every draw from every thread is a genuine join pair
        for pairs in &first {
            assert_eq!(pairs.len(), PER_THREAD);
            for p in pairs {
                let w = Rect::window(r[p.r as usize], l);
                assert!(w.contains(s[p.s as usize]), "{algo}: non-join pair {p:?}");
            }
        }
        // distinct seeds actually explore different streams
        let distinct: HashSet<&Vec<JoinPair>> = first.iter().collect();
        assert_eq!(distinct.len(), THREADS as usize, "{algo}: seed collision");

        // re-running with the same seeds reproduces every stream,
        // regardless of thread scheduling
        let second = run_all(&engine);
        assert_eq!(first, second, "{algo}: streams not reproducible");

        // aggregate stats saw every query
        let snap = engine.stats();
        assert_eq!(snap.queries, 2 * THREADS);
        assert_eq!(snap.samples, 2 * THREADS * PER_THREAD as u64);
        assert_eq!(snap.errors, 0);
        assert!(snap.p99_latency >= snap.p50_latency);
    }
}

/// Chi-square uniformity over a fully-enumerable join, drawing through
/// the engine path (handle-owned RNG, stats recording and all), for
/// each algorithm the engine can serve.
#[test]
fn engine_path_is_uniform_over_join() {
    let r = pseudo_points(60, 101, 60.0);
    let s = pseudo_points(90, 102, 60.0);
    let l = 6.0;

    let join = srj::join::nested_loop_join(&r, &s, l);
    assert!(join.len() > 10, "test join too small to be meaningful");
    let expected_support: HashSet<JoinPair> =
        join.iter().map(|&(a, b)| JoinPair::new(a, b)).collect();

    let per_pair = 60usize;
    let draws = per_pair * join.len();

    for algo in [Algorithm::Kds, Algorithm::KdsRejection, Algorithm::Bbst] {
        let engine = Engine::build(&r, &s, &SampleConfig::new(l), algo);
        let mut handle = engine.handle_seeded(0xC0FFEE);
        let samples = handle.sample(draws).unwrap();

        let mut freq: HashMap<JoinPair, usize> = HashMap::new();
        for p in samples {
            assert!(
                expected_support.contains(&p),
                "{algo}: emitted a non-join pair {p:?}"
            );
            *freq.entry(p).or_default() += 1;
        }
        assert_eq!(
            freq.len(),
            join.len(),
            "{algo}: some join pairs are unreachable"
        );

        let expected = per_pair as f64;
        let chi2: f64 = expected_support
            .iter()
            .map(|p| {
                let obs = *freq.get(p).unwrap_or(&0) as f64;
                (obs - expected) * (obs - expected) / expected
            })
            .sum();
        let df = (join.len() - 1) as f64;
        let threshold = df + 6.0 * (2.0 * df).sqrt();
        assert!(
            chi2 < threshold,
            "{algo}: χ² = {chi2:.1} exceeds {threshold:.1} (df = {df})"
        );
    }
}

/// The same uniformity must hold when the draws are split across
/// threads: merging every thread's samples is still uniform over `J`.
#[test]
fn engine_path_is_uniform_across_threads() {
    let r = pseudo_points(50, 201, 50.0);
    let s = pseudo_points(80, 202, 50.0);
    let l = 6.0;

    let join = srj::join::nested_loop_join(&r, &s, l);
    assert!(join.len() > 10);
    let expected_support: HashSet<JoinPair> =
        join.iter().map(|&(a, b)| JoinPair::new(a, b)).collect();

    const THREADS: u64 = 4;
    let per_pair = 60usize;
    let per_thread = per_pair * join.len() / THREADS as usize;

    let engine = Arc::new(Engine::build(
        &r,
        &s,
        &SampleConfig::new(l),
        Algorithm::Bbst,
    ));
    let mut freq: HashMap<JoinPair, usize> = HashMap::new();
    thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|tid| {
                let engine = Arc::clone(&engine);
                scope.spawn(move || {
                    engine
                        .handle_seeded(0xBEEF ^ tid)
                        .sample(per_thread)
                        .unwrap()
                })
            })
            .collect();
        for h in handles {
            for p in h.join().unwrap() {
                *freq.entry(p).or_default() += 1;
            }
        }
    });

    for p in freq.keys() {
        assert!(expected_support.contains(p), "non-join pair {p:?}");
    }
    assert_eq!(freq.len(), join.len(), "some join pairs unreachable");

    let total: usize = freq.values().sum();
    let expected = total as f64 / join.len() as f64;
    let chi2: f64 = expected_support
        .iter()
        .map(|p| {
            let obs = *freq.get(p).unwrap_or(&0) as f64;
            (obs - expected) * (obs - expected) / expected
        })
        .sum();
    let df = (join.len() - 1) as f64;
    let threshold = df + 6.0 * (2.0 * df).sqrt();
    assert!(chi2 < threshold, "χ² = {chi2:.1} exceeds {threshold:.1}");
}

/// Chi-square uniformity through the **R-sharded** engine path: the
/// sharded sampler (top-level alias over per-shard Σµ, shard re-picked
/// every iteration) must produce the same uniform distribution over `J`
/// as the unsharded engine — same support, χ² within threshold, and a
/// per-pair frequency profile statistically indistinguishable from the
/// unsharded run.
#[test]
fn sharded_engine_matches_unsharded_uniformity() {
    let r = pseudo_points(60, 101, 60.0);
    let s = pseudo_points(90, 102, 60.0);
    let l = 6.0;

    let join = srj::join::nested_loop_join(&r, &s, l);
    assert!(join.len() > 10, "test join too small to be meaningful");
    let expected_support: HashSet<JoinPair> =
        join.iter().map(|&(a, b)| JoinPair::new(a, b)).collect();

    let per_pair = 60usize;
    let draws = per_pair * join.len();

    for algo in [Algorithm::Kds, Algorithm::KdsRejection, Algorithm::Bbst] {
        let sharded = Engine::build_sharded(&r, &s, &SampleConfig::new(l), algo, 4);
        assert_eq!(sharded.shards(), 4);
        let samples = sharded.handle_seeded(0xC0FFEE).sample(draws).unwrap();

        let mut freq: HashMap<JoinPair, usize> = HashMap::new();
        for p in samples {
            assert!(
                expected_support.contains(&p),
                "{algo} sharded: emitted a non-join pair {p:?} (bad shard remap?)"
            );
            *freq.entry(p).or_default() += 1;
        }
        assert_eq!(
            freq.len(),
            join.len(),
            "{algo} sharded: some join pairs are unreachable"
        );

        // χ² against the uniform distribution over J — the same test
        // (same threshold) the unsharded engine path passes.
        let expected = per_pair as f64;
        let chi2: f64 = expected_support
            .iter()
            .map(|p| {
                let obs = *freq.get(p).unwrap_or(&0) as f64;
                (obs - expected) * (obs - expected) / expected
            })
            .sum();
        let df = (join.len() - 1) as f64;
        let threshold = df + 6.0 * (2.0 * df).sqrt();
        assert!(
            chi2 < threshold,
            "{algo} sharded: χ² = {chi2:.1} exceeds {threshold:.1} (df = {df})"
        );

        // two-sample χ² sharded-vs-unsharded: both draw from uniform,
        // so the homogeneity statistic must stay within threshold too.
        let unsharded = Engine::build(&r, &s, &SampleConfig::new(l), algo);
        let base_samples = unsharded.handle_seeded(0xBEEF).sample(draws).unwrap();
        let mut base_freq: HashMap<JoinPair, usize> = HashMap::new();
        for p in base_samples {
            *base_freq.entry(p).or_default() += 1;
        }
        let chi2_homog: f64 = expected_support
            .iter()
            .map(|p| {
                let a = *freq.get(p).unwrap_or(&0) as f64;
                let b = *base_freq.get(p).unwrap_or(&0) as f64;
                // equal sample sizes: χ² = Σ (a-b)² / (a+b)
                if a + b > 0.0 {
                    (a - b) * (a - b) / (a + b)
                } else {
                    0.0
                }
            })
            .sum();
        let df_h = (join.len() - 1) as f64;
        let threshold_h = df_h + 6.0 * (2.0 * df_h).sqrt();
        assert!(
            chi2_homog < threshold_h,
            "{algo}: sharded vs unsharded distributions differ: χ² = {chi2_homog:.1} \
             exceeds {threshold_h:.1}"
        );
    }
}

/// Sharded engines under real serving threads: reproducible per-seed
/// streams and valid pairs, mirroring `concurrent_threads_share_one_engine`.
#[test]
fn concurrent_threads_share_one_sharded_engine() {
    const THREADS: u64 = 4;
    const PER_THREAD: usize = 1_000;

    let r = pseudo_points(300, 1, 80.0);
    let s = pseudo_points(500, 2, 80.0);
    let l = 6.0;
    let cfg = SampleConfig::new(l);

    let engine = Arc::new(Engine::build_sharded(&r, &s, &cfg, Algorithm::Bbst, 4));
    let run_all = |engine: &Arc<Engine>| -> Vec<Vec<JoinPair>> {
        let mut joins = Vec::new();
        thread::scope(|scope| {
            let handles: Vec<_> = (0..THREADS)
                .map(|tid| {
                    let engine = Arc::clone(engine);
                    scope.spawn(move || {
                        let mut h = engine.handle_seeded(0xFEED ^ tid);
                        h.sample(PER_THREAD).expect("non-empty join must sample")
                    })
                })
                .collect();
            joins = handles.into_iter().map(|h| h.join().unwrap()).collect();
        });
        joins
    };

    let first = run_all(&engine);
    for pairs in &first {
        for p in pairs {
            let w = Rect::window(r[p.r as usize], l);
            assert!(w.contains(s[p.s as usize]), "non-join pair {p:?}");
        }
    }
    let second = run_all(&engine);
    assert_eq!(first, second, "sharded streams not reproducible");
    let snap = engine.stats();
    assert_eq!(snap.samples, 2 * THREADS * PER_THREAD as u64);
    assert!(snap.iterations >= snap.samples);
}

/// The engine cache: one build per `(dataset, l)`, hits share the
/// index, and concurrent lookers all get a working engine.
#[test]
fn cache_reuses_indexes_across_threads() {
    use std::sync::atomic::{AtomicUsize, Ordering};

    let r = pseudo_points(80, 301, 40.0);
    let s = pseudo_points(120, 302, 40.0);
    let cache = Arc::new(srj::EngineCache::new(4));
    let builds = AtomicUsize::new(0);

    thread::scope(|scope| {
        for tid in 0..6u64 {
            let cache = Arc::clone(&cache);
            let (r, s, builds) = (&r, &s, &builds);
            scope.spawn(move || {
                // threads alternate between two window sizes
                let l = if tid % 2 == 0 { 4.0 } else { 5.0 };
                let engine = cache.get_or_build(7, l, || {
                    builds.fetch_add(1, Ordering::Relaxed);
                    Engine::build(r, s, &SampleConfig::new(l), Algorithm::Bbst)
                });
                let pairs = engine.handle_seeded(tid).sample(100).unwrap();
                for p in pairs {
                    let w = Rect::window(r[p.r as usize], l);
                    assert!(w.contains(s[p.s as usize]));
                }
            });
        }
    });

    // at most one build per key can win the race; with benign timing
    // this is exactly 2, and never more than the 6 lookups
    assert!(cache.len() == 2, "expected both window sizes cached");
    assert!(builds.load(Ordering::Relaxed) >= 2);
    // warm cache: no further builds
    let again = cache.get_or_build(7, 4.0, || unreachable!("must be cached"));
    assert!(again.handle_seeded(9).sample_one().is_ok());
}
