//! The parallel build contract: `SampleConfig::build_threads` changes
//! wall-clock only, never results. For every algorithm, a build at any
//! thread count must produce bit-identical weights (`µ(r)` / exact
//! counts), the same `|J|`/`Σµ`, and — because the alias tables are
//! then also identical — the same sample stream under the same seed.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use srj::{
    generate, split_rs, BbstSampler, DatasetKind, DatasetSpec, JoinSampler, KdsRejectionSampler,
    KdsSampler, Point, SampleConfig,
};

/// A `datagen` dataset, as the acceptance criterion requires.
fn dataset() -> (Vec<Point>, Vec<Point>) {
    let points = generate(&DatasetSpec::new(DatasetKind::PoiClusters, 4_000, 99));
    split_rs(&points, 0.5, 0xD15C)
}

const THREAD_SWEEP: [usize; 4] = [2, 3, 4, 8];

#[test]
fn kds_parallel_build_is_bit_identical() {
    let (r, s) = dataset();
    let serial = KdsSampler::build(&r, &s, &SampleConfig::new(100.0));
    for threads in THREAD_SWEEP {
        let cfg = SampleConfig::new(100.0).with_build_threads(threads);
        let mut par = KdsSampler::build(&r, &s, &cfg);
        // exact counts ⇒ join size must match exactly
        assert_eq!(par.join_size(), serial.join_size(), "threads = {threads}");
        // identical alias ⇒ identical stream under one seed
        let mut serial_cursor = srj::KdsCursor::new(std::sync::Arc::clone(serial.index()));
        let mut rng_a = SmallRng::seed_from_u64(42);
        let mut rng_b = SmallRng::seed_from_u64(42);
        assert_eq!(
            par.sample(500, &mut rng_a).unwrap(),
            serial_cursor.sample(500, &mut rng_b).unwrap(),
            "threads = {threads}"
        );
    }
}

#[test]
fn rejection_parallel_build_is_bit_identical() {
    let (r, s) = dataset();
    let serial = KdsRejectionSampler::build(&r, &s, &SampleConfig::new(100.0));
    for threads in THREAD_SWEEP {
        let cfg = SampleConfig::new(100.0).with_build_threads(threads);
        let mut par = KdsRejectionSampler::build(&r, &s, &cfg);
        assert_eq!(par.mu_total(), serial.mu_total(), "threads = {threads}");
        for i in (0..r.len()).step_by(37) {
            assert_eq!(
                par.index().mu_of(i),
                serial.index().mu_of(i),
                "threads = {threads}, r{i}"
            );
        }
        let mut serial_cursor = srj::KdsRejectionCursor::new(std::sync::Arc::clone(serial.index()));
        let mut rng_a = SmallRng::seed_from_u64(43);
        let mut rng_b = SmallRng::seed_from_u64(43);
        assert_eq!(
            par.sample(500, &mut rng_a).unwrap(),
            serial_cursor.sample(500, &mut rng_b).unwrap(),
            "threads = {threads}"
        );
    }
}

#[test]
fn bbst_parallel_build_is_bit_identical() {
    let (r, s) = dataset();
    let serial = BbstSampler::build(&r, &s, &SampleConfig::new(100.0));
    for threads in THREAD_SWEEP {
        let cfg = SampleConfig::new(100.0).with_build_threads(threads);
        let mut par = BbstSampler::build(&r, &s, &cfg);
        assert_eq!(par.mu_total(), serial.mu_total(), "threads = {threads}");
        for i in (0..r.len()).step_by(37) {
            assert_eq!(par.mu_of(i), serial.mu_of(i), "threads = {threads}, r{i}");
        }
        let mut serial_cursor = srj::BbstCursor::new(std::sync::Arc::clone(serial.index()));
        let mut rng_a = SmallRng::seed_from_u64(44);
        let mut rng_b = SmallRng::seed_from_u64(44);
        assert_eq!(
            par.sample(500, &mut rng_a).unwrap(),
            serial_cursor.sample(500, &mut rng_b).unwrap(),
            "threads = {threads}"
        );
    }
}

#[test]
fn all_cores_build_threads_zero_works() {
    let (r, s) = dataset();
    let serial = BbstSampler::build(&r, &s, &SampleConfig::new(100.0));
    let auto = BbstSampler::build(&r, &s, &SampleConfig::new(100.0).with_build_threads(0));
    assert_eq!(auto.mu_total(), serial.mu_total());
}

#[test]
fn parallel_build_reports_wall_and_cpu() {
    let (r, s) = dataset();
    let cfg = SampleConfig::new(100.0).with_build_threads(4);
    let sampler = BbstSampler::build(&r, &s, &cfg);
    let rep = sampler.report();
    assert!(rep.upper_bounding > std::time::Duration::ZERO);
    // CPU ≥ wall·(fraction done in parallel); at minimum it is recorded.
    assert!(rep.upper_bounding_cpu > std::time::Duration::ZERO);
    // serial builds keep the two equal
    let serial = BbstSampler::build(&r, &s, &SampleConfig::new(100.0));
    let srep = serial.report();
    assert_eq!(srep.upper_bounding, srep.upper_bounding_cpu);
}
