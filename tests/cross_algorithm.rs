//! Cross-algorithm integration tests: all samplers agree with each other
//! and with the exact join algorithms, end to end through the public
//! facade.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use srj::{
    generate, split_rs, BbstKdVariantSampler, BbstSampler, DatasetKind, DatasetSpec, JoinSampler,
    JoinThenSample, KdsRejectionSampler, KdsSampler, Rect, SampleConfig,
};

fn build_all(r: &[srj::Point], s: &[srj::Point], cfg: &SampleConfig) -> Vec<Box<dyn JoinSampler>> {
    vec![
        Box::new(KdsSampler::build(r, s, cfg)),
        Box::new(KdsRejectionSampler::build(r, s, cfg)),
        Box::new(BbstSampler::build(r, s, cfg)),
        Box::new(BbstKdVariantSampler::build(r, s, cfg)),
        Box::new(JoinThenSample::build(r, s, cfg)),
    ]
}

/// On every synthetic dataset family, every sampler emits only genuine
/// join pairs and fills the requested count.
#[test]
fn all_samplers_emit_only_join_pairs_on_all_dataset_kinds() {
    for kind in [
        DatasetKind::Uniform,
        DatasetKind::RoadLike,
        DatasetKind::PoiClusters,
        DatasetKind::TrajectoryLike,
        DatasetKind::TaxiHotspots,
    ] {
        let points = generate(&DatasetSpec::new(kind, 4_000, 5));
        let (r, s) = split_rs(&points, 0.5, 6);
        let cfg = SampleConfig::new(150.0);
        for mut sampler in build_all(&r, &s, &cfg) {
            let mut rng = SmallRng::seed_from_u64(7);
            let samples = sampler
                .sample(300, &mut rng)
                .unwrap_or_else(|e| panic!("{} on {kind:?}: {e}", sampler.name()));
            assert_eq!(samples.len(), 300);
            for p in samples {
                let w = Rect::window(r[p.r as usize], cfg.half_extent);
                assert!(
                    w.contains(s[p.s as usize]),
                    "{} on {kind:?}: non-join pair {p:?}",
                    sampler.name()
                );
            }
        }
    }
}

/// Marginal distribution over R must match the ground truth for every
/// sampler: the probability that a sample's R-point lies in spatial zone
/// `z` is `Σ_{r ∈ z} |S(w(r))| / |J|`. Aggregating into 16 zones keeps
/// the per-category expectation high enough for a tight χ² bound.
#[test]
fn r_marginals_match_ground_truth() {
    let points = generate(&DatasetSpec::new(DatasetKind::PoiClusters, 3_000, 8));
    let (r, s) = split_rs(&points, 0.5, 9);
    let l = 200.0;
    let cfg = SampleConfig::new(l);
    let draws = 60_000usize;

    let zone = |p: &srj::Point| -> usize {
        let i = ((p.x / 2500.0) as usize).min(3);
        let j = ((p.y / 2500.0) as usize).min(3);
        j * 4 + i
    };
    // ground truth zone distribution
    let grid = srj_grid::Grid::build(&s, l);
    let counts = srj::join::per_r_counts(&r, &grid, l);
    let join_size: u64 = counts.iter().sum();
    assert!(join_size > 0);
    let mut exact = [0f64; 16];
    for (rp, &c) in r.iter().zip(counts.iter()) {
        exact[zone(rp)] += c as f64 / join_size as f64;
    }

    for mut sampler in build_all(&r, &s, &cfg) {
        let mut rng = SmallRng::seed_from_u64(10);
        let samples = sampler.sample(draws, &mut rng).unwrap();
        let mut observed = [0f64; 16];
        for p in samples {
            observed[zone(&r[p.r as usize])] += 1.0;
        }
        let mut chi2 = 0.0f64;
        let mut df = 0.0f64;
        for z in 0..16 {
            let expected = exact[z] * draws as f64;
            if expected >= 5.0 {
                chi2 += (observed[z] - expected) * (observed[z] - expected) / expected;
                df += 1.0;
            } else {
                assert!(
                    observed[z] <= expected.max(1.0) * 30.0,
                    "{}: zone {z} grossly over-sampled",
                    sampler.name()
                );
            }
        }
        let threshold = df + 6.0 * (2.0 * df).sqrt();
        assert!(
            chi2 < threshold,
            "{}: zone χ² = {chi2:.1} over threshold {threshold:.1}",
            sampler.name()
        );
    }
}

/// Sampling without replacement returns distinct pairs that exhaust a
/// small join exactly.
#[test]
fn without_replacement_exhausts_small_join() {
    let points = generate(&DatasetSpec::new(DatasetKind::Uniform, 400, 12));
    let (r, s) = split_rs(&points, 0.5, 13);
    let l = 300.0;
    let join = srj::join::nested_loop_join(&r, &s, l);
    assert!(!join.is_empty());
    let mut sampler = BbstSampler::build(&r, &s, &SampleConfig::new(l));
    let mut rng = SmallRng::seed_from_u64(14);
    let got = sampler
        .sample_without_replacement(join.len(), &mut rng)
        .unwrap();
    let mut got_pairs: Vec<(u32, u32)> = got.into_iter().map(|p| (p.r, p.s)).collect();
    got_pairs.sort_unstable();
    let mut expected = join;
    expected.sort_unstable();
    assert_eq!(got_pairs, expected, "without-replacement must enumerate J");
}

/// The three exact-|J| sources agree: KDS counting, the variant's exact
/// µ, join-then-sample's materialised size, and srj-join's counter.
#[test]
fn join_size_consensus() {
    let points = generate(&DatasetSpec::new(DatasetKind::RoadLike, 3_000, 15));
    let (r, s) = split_rs(&points, 0.5, 16);
    let l = 120.0;
    let cfg = SampleConfig::new(l);
    let kds = KdsSampler::build(&r, &s, &cfg);
    let variant = BbstKdVariantSampler::build(&r, &s, &cfg);
    let jts = JoinThenSample::build(&r, &s, &cfg);
    let counted = srj::join::join_count(&r, &s, l);
    assert_eq!(kds.join_size(), counted);
    assert_eq!(variant.mu_total() as u64, counted);
    assert_eq!(jts.join_size(), counted);
    // and the BBST bound dominates it
    let bbst = BbstSampler::build(&r, &s, &cfg);
    assert!(bbst.mu_total() >= counted as f64);
}

/// Join algorithms agree with each other on generated data.
#[test]
fn join_algorithms_agree() {
    let points = generate(&DatasetSpec::new(DatasetKind::TaxiHotspots, 2_000, 17));
    let (r, s) = split_rs(&points, 0.4, 18);
    for l in [50.0, 150.0, 400.0] {
        let mut a = srj::join::grid_join(&r, &s, l);
        let mut b = srj::join::plane_sweep_join(&r, &s, l);
        let mut c = srj::join::nested_loop_join(&r, &s, l);
        let mut d = srj::join::rtree_join(&r, &s, l);
        srj::join::sort_pairs(&mut a);
        srj::join::sort_pairs(&mut b);
        srj::join::sort_pairs(&mut c);
        srj::join::sort_pairs(&mut d);
        assert_eq!(a, c, "grid vs nested, l = {l}");
        assert_eq!(b, c, "sweep vs nested, l = {l}");
        assert_eq!(d, c, "rtree vs nested, l = {l}");
    }
}

/// Samplers are deterministic given the same seed and build inputs.
#[test]
fn deterministic_given_seed() {
    let points = generate(&DatasetSpec::new(DatasetKind::PoiClusters, 2_000, 19));
    let (r, s) = split_rs(&points, 0.5, 20);
    let cfg = SampleConfig::new(150.0);
    let mut a = BbstSampler::build(&r, &s, &cfg);
    let mut b = BbstSampler::build(&r, &s, &cfg);
    let mut rng_a = SmallRng::seed_from_u64(99);
    let mut rng_b = SmallRng::seed_from_u64(99);
    assert_eq!(
        a.sample(1_000, &mut rng_a).unwrap(),
        b.sample(1_000, &mut rng_b).unwrap()
    );
}
