//! Edge-case and failure-injection tests across the public API.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use srj::{
    BbstKdVariantSampler, BbstSampler, JoinSampler, KdsRejectionSampler, KdsSampler, Point, Rect,
    SampleConfig, SampleError,
};

fn all_samplers(r: &[Point], s: &[Point], cfg: &SampleConfig) -> Vec<Box<dyn JoinSampler>> {
    vec![
        Box::new(KdsSampler::build(r, s, cfg)),
        Box::new(KdsRejectionSampler::build(r, s, cfg)),
        Box::new(BbstSampler::build(r, s, cfg)),
        Box::new(BbstKdVariantSampler::build(r, s, cfg)),
    ]
}

#[test]
fn single_pair_join() {
    let r = vec![Point::new(5.0, 5.0)];
    let s = vec![Point::new(5.5, 5.5)];
    let cfg = SampleConfig::new(1.0);
    for mut sampler in all_samplers(&r, &s, &cfg) {
        let mut rng = SmallRng::seed_from_u64(1);
        let samples = sampler.sample(50, &mut rng).unwrap();
        assert!(
            samples.iter().all(|p| p.r == 0 && p.s == 0),
            "{}",
            sampler.name()
        );
    }
}

#[test]
fn point_exactly_on_window_edges_joins() {
    // closed predicate: points at distance exactly l on each axis join
    let r = vec![Point::new(10.0, 10.0)];
    let s = vec![
        Point::new(8.0, 10.0),
        Point::new(12.0, 10.0),
        Point::new(10.0, 8.0),
        Point::new(10.0, 12.0),
        Point::new(8.0, 8.0),
        Point::new(12.0, 12.0),
    ];
    let cfg = SampleConfig::new(2.0);
    for mut sampler in all_samplers(&r, &s, &cfg) {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..600 {
            seen.insert(sampler.sample_one(&mut rng).unwrap().s);
        }
        assert_eq!(
            seen.len(),
            s.len(),
            "{}: edge points must be reachable",
            sampler.name()
        );
    }
}

#[test]
fn all_points_identical() {
    // n × m duplicate coordinates: every pair joins, BBST's equal-key
    // lists take the full load
    let r = vec![Point::new(3.0, 3.0); 20];
    let s = vec![Point::new(3.0, 3.0); 30];
    let cfg = SampleConfig::new(1.0);
    for mut sampler in all_samplers(&r, &s, &cfg) {
        let mut rng = SmallRng::seed_from_u64(3);
        let samples = sampler.sample(2_000, &mut rng).unwrap();
        // both marginals should cover everything
        let rs: std::collections::HashSet<u32> = samples.iter().map(|p| p.r).collect();
        let ss: std::collections::HashSet<u32> = samples.iter().map(|p| p.s).collect();
        assert_eq!(rs.len(), 20, "{}", sampler.name());
        assert_eq!(ss.len(), 30, "{}", sampler.name());
    }
}

#[test]
fn collinear_points_on_cell_boundaries() {
    // lattice points with l = 1: every point sits on a cell corner
    let r: Vec<Point> = (0..10).map(|i| Point::new(i as f64, 5.0)).collect();
    let s: Vec<Point> = (0..10).map(|i| Point::new(i as f64, 5.0)).collect();
    let cfg = SampleConfig::new(1.0);
    let expected = srj::join::nested_loop_join(&r, &s, 1.0);
    for mut sampler in all_samplers(&r, &s, &cfg) {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..4_000 {
            let p = sampler.sample_one(&mut rng).unwrap();
            assert!(
                expected.contains(&(p.r, p.s)),
                "{}: invalid pair {p:?}",
                sampler.name()
            );
            seen.insert((p.r, p.s));
        }
        assert_eq!(seen.len(), expected.len(), "{}", sampler.name());
    }
}

#[test]
fn window_larger_than_domain() {
    // l covering everything: J = R × S, weights are maximal everywhere
    let r: Vec<Point> = (0..15)
        .map(|i| Point::new(i as f64, (i % 5) as f64))
        .collect();
    let s: Vec<Point> = (0..12)
        .map(|i| Point::new((i % 7) as f64, i as f64))
        .collect();
    let cfg = SampleConfig::new(1_000.0);
    for mut sampler in all_samplers(&r, &s, &cfg) {
        let mut rng = SmallRng::seed_from_u64(5);
        let samples = sampler.sample(3_000, &mut rng).unwrap();
        let distinct: std::collections::HashSet<_> = samples.iter().map(|p| (p.r, p.s)).collect();
        assert_eq!(
            distinct.len(),
            15 * 12,
            "{}: cross product not covered",
            sampler.name()
        );
    }
}

#[test]
fn tiny_window_sparse_join() {
    let r: Vec<Point> = (0..50).map(|i| Point::new(i as f64 * 10.0, 0.0)).collect();
    let mut s = r.clone();
    s.iter_mut().for_each(|p| p.x += 0.001);
    let cfg = SampleConfig::new(0.01);
    for mut sampler in all_samplers(&r, &s, &cfg) {
        let mut rng = SmallRng::seed_from_u64(6);
        let samples = sampler.sample(500, &mut rng).unwrap();
        for p in samples {
            assert_eq!(p.r, p.s, "{}: only the shifted twin joins", sampler.name());
        }
    }
}

#[test]
fn empty_join_errors_uniformly() {
    let r = vec![Point::new(0.0, 0.0)];
    let s = vec![Point::new(9_999.0, 9_999.0)];
    let cfg = SampleConfig::new(1.0);
    for mut sampler in all_samplers(&r, &s, &cfg) {
        let mut rng = SmallRng::seed_from_u64(7);
        assert_eq!(
            sampler.sample_one(&mut rng),
            Err(SampleError::EmptyJoin),
            "{}",
            sampler.name()
        );
    }
}

#[test]
fn negative_coordinates_work() {
    // datasets are normally normalised to [0, 10000]² but nothing should
    // break off-domain
    let r = vec![Point::new(-50.0, -50.0), Point::new(-45.0, -45.0)];
    let s = vec![Point::new(-49.0, -49.0), Point::new(-44.0, -46.0)];
    let cfg = SampleConfig::new(3.0);
    let expected = srj::join::nested_loop_join(&r, &s, 3.0);
    assert!(!expected.is_empty());
    for mut sampler in all_samplers(&r, &s, &cfg) {
        let mut rng = SmallRng::seed_from_u64(8);
        for _ in 0..200 {
            let p = sampler.sample_one(&mut rng).unwrap();
            assert!(expected.contains(&(p.r, p.s)), "{}", sampler.name());
        }
    }
}

#[test]
fn asymmetric_sizes() {
    // |R| ≫ |S| and |R| ≪ |S| (Fig. 8 territory)
    let big: Vec<Point> = (0..300)
        .map(|i| Point::new((i % 20) as f64, (i / 20) as f64))
        .collect();
    let small = vec![Point::new(5.0, 5.0), Point::new(12.0, 9.0)];
    let cfg = SampleConfig::new(2.0);
    for (r, s) in [(big.clone(), small.clone()), (small, big)] {
        let expected = srj::join::nested_loop_join(&r, &s, 2.0);
        for mut sampler in all_samplers(&r, &s, &cfg) {
            let mut rng = SmallRng::seed_from_u64(9);
            let samples = sampler.sample(400, &mut rng).unwrap();
            for p in samples {
                assert!(expected.contains(&(p.r, p.s)), "{}", sampler.name());
            }
        }
    }
}

#[test]
fn self_join() {
    // R = S: every point joins at least itself, so |J| ≥ n
    let pts: Vec<Point> = (0..40)
        .map(|i| Point::new((i * 7 % 40) as f64, (i * 3 % 40) as f64))
        .collect();
    let cfg = SampleConfig::new(2.5);
    for mut sampler in all_samplers(&pts, &pts, &cfg) {
        let mut rng = SmallRng::seed_from_u64(10);
        let samples = sampler.sample(500, &mut rng).unwrap();
        for p in samples {
            let w = Rect::window(pts[p.r as usize], 2.5);
            assert!(w.contains(pts[p.s as usize]), "{}", sampler.name());
        }
    }
}

#[test]
#[should_panic(expected = "finite coordinates")]
fn nan_coordinates_rejected_by_grid() {
    let bad = vec![Point::new(f64::NAN, 0.0)];
    srj_grid::Grid::build(&bad, 1.0);
}

#[test]
#[should_panic(expected = "finite coordinates")]
fn infinite_coordinates_rejected_by_kdtree() {
    let bad = vec![Point::new(0.0, f64::INFINITY)];
    srj::kdtree::KdTree::build(&bad);
}

#[test]
#[should_panic(expected = "finite coordinates")]
fn nan_coordinates_rejected_by_rangetree() {
    let bad = vec![Point::new(0.0, f64::NAN)];
    srj::rangetree::RangeTree::build(&bad);
}

#[test]
fn sample_zero_returns_empty() {
    let pts = vec![Point::new(0.0, 0.0)];
    let cfg = SampleConfig::new(1.0);
    let mut sampler = BbstSampler::build(&pts, &pts, &cfg);
    let mut rng = SmallRng::seed_from_u64(11);
    assert!(sampler.sample(0, &mut rng).unwrap().is_empty());
}
