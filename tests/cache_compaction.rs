//! Regression: `DatasetStore::compact()` renumbers ids, so an
//! [`EngineCache`] keyed on the store's epoch (generation) must never
//! answer a post-compaction lookup with an engine built over the
//! pre-compaction id space — and eager invalidation must drop the
//! stale generations outright.

use std::sync::Arc;

use srj::{Algorithm, DatasetStore, Engine, EngineCache, Point, SampleConfig};

fn pseudo_points(n: usize, seed: u64, extent: f64) -> Vec<Point> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n)
        .map(|_| Point::new(next() * extent, next() * extent))
        .collect()
}

fn build_from(store: &DatasetStore, l: f64) -> Engine {
    let snap = store.snapshot();
    Engine::build(
        &snap.base_r,
        &snap.base_s,
        &SampleConfig::new(l),
        Algorithm::Bbst,
    )
}

/// The core regression: after a compaction bumps the store's epoch, a
/// caller that keys its lookup with the *current* epoch can never be
/// served the engine built over the renumbered-away id space, because
/// the generation is part of the cache key and epochs never repeat.
#[test]
fn compaction_never_aliases_generations() {
    let l = 5.0;
    let store = DatasetStore::new(pseudo_points(80, 1, 50.0), pseudo_points(120, 2, 50.0));
    let cache = EngineCache::new(8);
    let dataset = 42u64;

    let mut builds = 0usize;
    let g0 = store.epoch();
    let old = cache.get_or_build_versioned(dataset, g0, l, 1, None, || {
        builds += 1;
        build_from(&store, l)
    });
    let old_live_r = store.live_r_len();

    // Mutate and compact: ids renumber, epoch bumps (monotonically —
    // generations can never repeat, so no future lookup can collide
    // with a stale entry).
    for id in 0..40u32 {
        assert!(store.delete_r(id));
    }
    store.insert_s(Point::new(1.0, 1.0));
    let (_, s_changed) = store.compact();
    assert!(s_changed);
    let g1 = store.epoch();
    assert!(g1 > g0, "epochs must be strictly monotonic");

    // A current-generation lookup must MISS (and rebuild), never
    // answer with the stale engine.
    assert!(
        cache.get_versioned(dataset, g1, l, 1, None).is_none(),
        "stale engine served for the new generation"
    );
    let fresh = cache.get_or_build_versioned(dataset, g1, l, 1, None, || {
        builds += 1;
        build_from(&store, l)
    });
    assert_eq!(builds, 2, "the new generation must rebuild");

    // The two engines really cover different id spaces: the stale one
    // can emit r ids ≥ the compacted live size; the fresh one cannot.
    let live_r = store.live_r_len();
    assert!(live_r < old_live_r);
    let mut h = fresh.handle_seeded(7);
    for _ in 0..2_000 {
        let p = h.sample_one().unwrap();
        assert!(
            (p.r as usize) < live_r,
            "fresh engine emitted a renumbered-away id {}",
            p.r
        );
    }
    drop(old);

    // Eager invalidation drops every generation of the dataset.
    assert_eq!(cache.invalidate_dataset(dataset), 2);
    assert!(cache.get_versioned(dataset, g0, l, 1, None).is_none());
    assert!(cache.get_versioned(dataset, g1, l, 1, None).is_none());
}

/// Same guarantee through incremental (cell-patch) compaction: the
/// epoch bumps there too, so patched epochs get their own generation
/// keys and the pre-patch engine is unreachable for current lookups.
#[test]
fn incremental_compaction_bumps_the_generation_too() {
    let l = 4.0;
    let store = Arc::new(DatasetStore::new(
        pseudo_points(40, 11, 40.0),
        pseudo_points(60, 12, 40.0),
    ));
    let cache = EngineCache::new(4);
    let g0 = store.epoch();
    cache.get_or_build_versioned(7, g0, l, 1, None, || build_from(&store, l));

    store.delete_s(3);
    let (snap, patch) = store.compact_incremental();
    assert!(patch.s_changed());
    assert!(snap.epoch > g0);
    assert!(
        cache.get_versioned(7, snap.epoch, l, 1, None).is_none(),
        "patched epoch must not be answered by the pre-patch engine"
    );
}
