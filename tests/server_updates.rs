//! Loopback integration tests for the dynamic-dataset protocol:
//! `INSERT`/`DELETE`/`EPOCH` frames end to end, mutation visibility in
//! subsequent `SAMPLE` answers, epoch-swap observability, and error
//! frames for unknown datasets.

use srj::{
    Client, DatasetRegistry, Point, Rect, RequestStatus, SampleRequest, Server, ServerConfig, Side,
};

fn pseudo_points(n: usize, seed: u64, extent: f64) -> Vec<Point> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n)
        .map(|_| Point::new(next() * extent, next() * extent))
        .collect()
}

fn request(dataset: u64, l: f64, t: u64, seed: u64) -> SampleRequest {
    SampleRequest {
        req_id: 0,
        dataset,
        l,
        algorithm: None,
        shards: 1,
        t,
        seed,
    }
}

fn start_server() -> Server {
    let mut registry = DatasetRegistry::new();
    registry.register(1, pseudo_points(60, 1, 40.0), pseudo_points(90, 2, 40.0));
    Server::start("127.0.0.1:0", registry, ServerConfig::default()).expect("bind loopback")
}

/// Inserted points must show up in subsequent samples — without a
/// server restart — and deletes must stop showing up. The epoch frame
/// tracks the mutation counters throughout.
#[test]
fn updates_flow_over_tcp_and_reach_the_samples() {
    let mut server = start_server();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let l = 5.0;

    let (status, info0) = client.epoch(1).unwrap();
    assert_eq!(status, RequestStatus::Ok);
    assert_eq!((info0.epoch, info0.version, info0.pending_ops), (0, 0, 0));
    assert_eq!((info0.live_r, info0.live_s), (60, 90));

    // A far-away cluster only reachable through the inserted points.
    let r_ins = client
        .insert(1, Side::R, &[Point::new(500.0, 500.0)])
        .unwrap();
    assert_eq!(r_ins.status, RequestStatus::Ok);
    assert_eq!(r_ins.applied, 1);
    assert_eq!(r_ins.first_id, 60, "R ids continue after the base");
    let s_ins = client
        .insert(
            1,
            Side::S,
            &[Point::new(501.0, 501.0), Point::new(499.0, 499.0)],
        )
        .unwrap();
    assert_eq!(s_ins.status, RequestStatus::Ok);
    assert_eq!(s_ins.first_id, 90);
    assert_eq!(s_ins.applied, 2);

    let (_, info1) = client.epoch(1).unwrap();
    assert_eq!(info1.version, 2, "one version bump per update batch");
    assert_eq!(info1.pending_ops, 3);
    assert_eq!((info1.live_r, info1.live_s), (61, 92));

    // The new cluster must be sampleable now.
    let outcome = client.sample(request(1, l, 4_000, 7)).unwrap();
    assert_eq!(outcome.status, RequestStatus::Ok);
    let cluster_hits = outcome
        .pairs
        .iter()
        .filter(|p| p.r == r_ins.first_id)
        .count();
    assert!(cluster_hits > 0, "inserted pair never sampled over TCP");
    for p in &outcome.pairs {
        if p.r == r_ins.first_id {
            assert!(p.s == 90 || p.s == 91, "cluster r joined a far s: {p:?}");
        }
    }

    // Delete the inserted R point: the cluster must vanish.
    let del = client.delete(1, Side::R, &[r_ins.first_id]).unwrap();
    assert_eq!(del.status, RequestStatus::Ok);
    assert_eq!(del.applied, 1);
    // Idempotent over the wire: a second delete applies nothing.
    let del2 = client.delete(1, Side::R, &[r_ins.first_id]).unwrap();
    assert_eq!(del2.status, RequestStatus::Ok);
    assert_eq!(del2.applied, 0);

    let outcome = client.sample(request(1, l, 4_000, 8)).unwrap();
    assert_eq!(outcome.status, RequestStatus::Ok);
    assert!(
        outcome.pairs.iter().all(|p| p.r != r_ins.first_id),
        "tombstoned point still sampled"
    );

    server.shutdown();
}

/// Enough mutations cross the rebuild threshold: the epoch bumps, ids
/// renumber, and samples stay valid against the compacted dataset.
#[test]
fn rebuild_threshold_bumps_the_epoch_over_tcp() {
    let r = pseudo_points(40, 11, 30.0);
    let s = pseudo_points(40, 12, 30.0);
    let mut registry = DatasetRegistry::new();
    registry.register(1, r.clone(), s.clone());
    let config = ServerConfig {
        epoch: srj::EpochConfig::default().with_rebuild_fraction(0.1),
        ..ServerConfig::default()
    };
    let mut server = Server::start("127.0.0.1:0", registry, config).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let l = 4.0;

    // Prime an engine so the swap below is observable as a swap.
    assert_eq!(
        client.sample(request(1, l, 500, 3)).unwrap().status,
        RequestStatus::Ok
    );

    let extra = pseudo_points(20, 13, 30.0);
    let ins = client.insert(1, Side::R, &extra).unwrap();
    assert_eq!(ins.status, RequestStatus::Ok);
    assert_eq!(ins.epoch, 0, "mutation alone must not rebuild");

    // The next sample folds the delta in (lazy swap) — past the 10%
    // threshold that means compaction.
    let outcome = client.sample(request(1, l, 2_000, 4)).unwrap();
    assert_eq!(outcome.status, RequestStatus::Ok);
    let (_, info) = client.epoch(1).unwrap();
    assert_eq!(info.epoch, 1, "threshold crossed: epoch must bump");
    assert_eq!(info.pending_ops, 0, "compaction folds the delta");
    assert_eq!(info.live_r, 60);

    // Post-swap ids address the compacted arrays.
    let mut all: Vec<Point> = r;
    all.extend_from_slice(&extra);
    let outcome = client.sample(request(1, l, 2_000, 5)).unwrap();
    for p in &outcome.pairs {
        let rp = all[p.r as usize];
        let sp = s[p.s as usize];
        assert!(Rect::window(rp, l).contains(sp), "bad post-swap pair {p:?}");
    }

    server.shutdown();
}

/// Unknown datasets answer clean error frames for every update opcode;
/// the connection stays usable.
#[test]
fn unknown_dataset_update_error_frames() {
    let mut server = start_server();
    let mut client = Client::connect(server.local_addr()).unwrap();

    let ins = client.insert(99, Side::R, &[Point::new(0.0, 0.0)]).unwrap();
    assert_eq!(ins.status, RequestStatus::UnknownDataset);
    let del = client.delete(99, Side::S, &[0]).unwrap();
    assert_eq!(del.status, RequestStatus::UnknownDataset);
    let (status, _) = client.epoch(99).unwrap();
    assert_eq!(status, RequestStatus::UnknownDataset);

    // Still serving afterwards.
    let outcome = client.sample(request(1, 5.0, 100, 1)).unwrap();
    assert_eq!(outcome.status, RequestStatus::Ok);
    server.shutdown();
}

/// Mixed concurrent readers and writers: no request may fail, every
/// pair must be valid for some epoch's id space, and the server's
/// stats stay coherent.
#[test]
fn concurrent_updates_and_reads_stay_consistent() {
    let mut server = start_server();
    let addr = server.local_addr();

    std::thread::scope(|scope| {
        // Two writer connections inserting disjoint far-away clusters.
        for w in 0..2u64 {
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for i in 0..20 {
                    let base = 1_000.0 * (w + 1) as f64 + i as f64 * 10.0;
                    let ins = client
                        .insert(1, Side::R, &[Point::new(base, base)])
                        .unwrap();
                    assert_eq!(ins.status, RequestStatus::Ok);
                    let ins = client
                        .insert(1, Side::S, &[Point::new(base + 1.0, base + 1.0)])
                        .unwrap();
                    assert_eq!(ins.status, RequestStatus::Ok);
                }
            });
        }
        // Two reader connections sampling throughout.
        for rdr in 0..2u64 {
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for i in 0..10 {
                    let outcome = client
                        .sample(request(1, 5.0, 1_000, rdr * 100 + i))
                        .unwrap();
                    assert_eq!(outcome.status, RequestStatus::Ok);
                    assert_eq!(outcome.pairs.len(), 1_000);
                }
            });
        }
    });

    let mut client = Client::connect(addr).unwrap();
    let (status, info) = client.epoch(1).unwrap();
    assert_eq!(status, RequestStatus::Ok);
    assert_eq!(info.live_r, 60 + 40);
    assert_eq!(info.live_s, 90 + 40);
    let stats = client.server_stats().unwrap();
    assert_eq!(stats.errors, 0);
    assert!(stats.queries >= 20);
    server.shutdown();
}
