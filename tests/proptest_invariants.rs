//! Property-based tests (proptest) over the core invariants, with random
//! point clouds, window sizes, and query positions.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use srj::{
    BbstSampler, JoinSampler, KdsRejectionSampler, KdsSampler, MassMode, Point, Rect, SampleConfig,
};
use srj_bbst::{bucket_capacity, CellBbsts, QuadrantQuery};
use srj_grid::Grid;
use srj_kdtree::KdTree;

fn arb_point(extent: f64) -> impl Strategy<Value = Point> {
    (0.0..extent, 0.0..extent).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_points(max_n: usize, extent: f64) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(arb_point(extent), 1..max_n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// kd-tree range counting equals brute force for arbitrary windows.
    #[test]
    fn kdtree_count_matches_brute_force(
        pts in arb_points(300, 100.0),
        cx in 0.0..100.0f64,
        cy in 0.0..100.0f64,
        half in 0.1..60.0f64,
        leaf in 1usize..20,
    ) {
        let tree = KdTree::with_leaf_size(&pts, leaf);
        let w = Rect::window(Point::new(cx, cy), half);
        let brute = pts.iter().filter(|p| w.contains(**p)).count();
        prop_assert_eq!(tree.range_count(&w), brute);
    }

    /// kd-tree sampling returns a window member whenever one exists, and
    /// reports the exact count.
    #[test]
    fn kdtree_sample_is_in_window(
        pts in arb_points(200, 50.0),
        cx in 0.0..50.0f64,
        cy in 0.0..50.0f64,
        half in 0.5..30.0f64,
        seed in 0u64..1000,
    ) {
        let tree = KdTree::build(&pts);
        let w = Rect::window(Point::new(cx, cy), half);
        let brute = pts.iter().filter(|p| w.contains(**p)).count();
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut scratch = srj_kdtree::CanonicalScratch::new();
        match tree.sample_in_range(&w, &mut rng, &mut scratch) {
            Some((id, count)) => {
                prop_assert_eq!(count, brute);
                prop_assert!(w.contains(pts[id as usize]));
            }
            None => prop_assert_eq!(brute, 0),
        }
    }

    /// Grid exact window counting equals brute force.
    #[test]
    fn grid_count_matches_brute_force(
        pts in arb_points(300, 100.0),
        cell in 0.5..40.0f64,
        cx in -10.0..110.0f64,
        cy in -10.0..110.0f64,
        half in 0.1..50.0f64,
    ) {
        let grid = Grid::build(&pts, cell);
        let w = Rect::window(Point::new(cx, cy), half);
        let brute = pts.iter().filter(|p| w.contains(**p)).count();
        prop_assert_eq!(grid.exact_window_count(&w), brute);
    }

    /// BBST quadrant counting is sandwiched: exact ≤ Exact-mass ≤
    /// Virtual-mass, and Virtual is bucket-resolution-tight (Lemma 5's
    /// structure: every counted bucket except at most one straddler
    /// holds a qualifying point... the bucket-level statement we can
    /// check deterministically is virt ≤ cap · (#matched buckets)).
    #[test]
    fn bbst_count_sandwich(
        pts in arb_points(400, 60.0),
        x0 in 0.0..60.0f64,
        y0 in 0.0..60.0f64,
        x_is_min in any::<bool>(),
        y_is_min in any::<bool>(),
    ) {
        let mut by_x: Vec<u32> = (0..pts.len() as u32).collect();
        by_x.sort_by(|&a, &b| pts[a as usize].x.total_cmp(&pts[b as usize].x));
        let cap = bucket_capacity(pts.len());
        let cb = CellBbsts::build(&pts, &by_x, cap);
        let q = QuadrantQuery { x_is_min, y_is_min, x0, y0 };
        let exact = pts.iter().filter(|p| q.contains(**p)).count() as u64;
        let tight = cb.count_quadrant(&q, MassMode::Exact);
        let virt = cb.count_quadrant(&q, MassMode::Virtual);
        prop_assert!(exact <= tight, "exact {} > tight {}", exact, tight);
        prop_assert!(tight <= virt, "tight {} > virt {}", tight, virt);
        // at most one bucket straddles the x boundary and one the y scan,
        // so virt / cap can exceed the number of buckets holding
        // qualifying points by at most 1 per dimension of slack... the
        // deterministic Lemma 5 shape:
        let cap = cap as u64;
        prop_assert!(virt <= cap * exact + 2 * cap, "virt {} exact {} cap {}", virt, exact, cap);
    }

    /// Full-pipeline sandwich: the BBST sampler's µ(r) respects Lemma 5
    /// against the exact count for every r, on random inputs.
    #[test]
    fn bbst_mu_respects_lemma5(
        r in arb_points(40, 80.0),
        s in arb_points(200, 80.0),
        l in 1.0..30.0f64,
    ) {
        let sampler = BbstSampler::build(&r, &s, &SampleConfig::new(l));
        let cap = sampler.bucket_cap() as f64;
        for (i, &rp) in r.iter().enumerate() {
            let w = Rect::window(rp, l);
            let exact = s.iter().filter(|p| w.contains(**p)).count() as f64;
            let mu = sampler.mu_of(i);
            prop_assert!(mu >= exact);
            // 4 corner cells, each contributing ≤ cap·exact_corner + 2·cap
            prop_assert!(mu <= cap.max(1.0) * exact + 8.0 * cap + 1.0);
        }
    }

    /// Rejection-sampler bound µ(r) dominates the exact count (9-cell
    /// population is a superset of the window).
    #[test]
    fn rejection_mu_dominates(
        r in arb_points(30, 60.0),
        s in arb_points(150, 60.0),
        l in 1.0..20.0f64,
    ) {
        let sampler = KdsRejectionSampler::build(&r, &s, &SampleConfig::new(l));
        let join = srj::join::join_count(&r, &s, l) as f64;
        prop_assert!(sampler.mu_total() >= join);
    }

    /// Join algorithms agree under arbitrary inputs (including heavy
    /// duplicates from the narrow value range).
    #[test]
    fn joins_agree(
        r in arb_points(60, 20.0),
        s in arb_points(60, 20.0),
        l in 0.5..15.0f64,
    ) {
        let mut a = srj::join::grid_join(&r, &s, l);
        let mut b = srj::join::plane_sweep_join(&r, &s, l);
        let mut c = srj::join::nested_loop_join(&r, &s, l);
        let mut d = srj::join::rtree_join(&r, &s, l);
        srj::join::sort_pairs(&mut a);
        srj::join::sort_pairs(&mut b);
        srj::join::sort_pairs(&mut c);
        srj::join::sort_pairs(&mut d);
        prop_assert_eq!(&a, &c);
        prop_assert_eq!(&b, &c);
        prop_assert_eq!(&d, &c);
    }

    /// Every sampler emits only join pairs, for arbitrary geometry.
    #[test]
    fn samplers_emit_only_join_pairs(
        r in arb_points(40, 40.0),
        s in arb_points(80, 40.0),
        l in 1.0..15.0f64,
        seed in 0u64..500,
    ) {
        let cfg = SampleConfig::new(l).with_rejection_limit(200_000);
        let join_size = srj::join::join_count(&r, &s, l);
        let mut samplers: Vec<Box<dyn JoinSampler>> = vec![
            Box::new(KdsSampler::build(&r, &s, &cfg)),
            Box::new(KdsRejectionSampler::build(&r, &s, &cfg)),
            Box::new(BbstSampler::build(&r, &s, &cfg)),
        ];
        for sampler in &mut samplers {
            let mut rng = SmallRng::seed_from_u64(seed);
            match sampler.sample(20, &mut rng) {
                Ok(samples) => {
                    prop_assert!(join_size > 0);
                    for p in samples {
                        let w = Rect::window(r[p.r as usize], l);
                        prop_assert!(w.contains(s[p.s as usize]));
                    }
                }
                Err(_) => prop_assert_eq!(join_size, 0),
            }
        }
    }
}
