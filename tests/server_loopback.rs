//! Loopback integration tests for the `srj-server` subsystem: the wire
//! protocol end to end, uniformity of networked samples under
//! concurrent clients, error frames, backpressure isolation, and
//! leak-free shutdown.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use srj::server::ServerStatsFrame;
use srj::{
    Algorithm, Client, DatasetRegistry, JoinPair, Point, Rect, RequestStatus, SampleRequest,
    Server, ServerConfig,
};

fn pseudo_points(n: usize, seed: u64, extent: f64) -> Vec<Point> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n)
        .map(|_| Point::new(next() * extent, next() * extent))
        .collect()
}

fn request(dataset: u64, l: f64, t: u64, seed: u64) -> SampleRequest {
    SampleRequest {
        req_id: 0,
        dataset,
        l,
        algorithm: None,
        shards: 1,
        t,
        seed,
    }
}

/// Concurrent clients over one server: every pair is a genuine join
/// result, and the pooled output is uniform over `J` (chi-square with
/// the same 6σ margin as `tests/uniformity.rs`).
#[test]
fn concurrent_clients_get_uniform_samples() {
    let r = pseudo_points(60, 1, 40.0);
    let s = pseudo_points(90, 2, 40.0);
    let l = 5.0;
    let join = srj::join::nested_loop_join(&r, &s, l);
    assert!(join.len() > 10, "test join too small to be meaningful");

    let mut registry = DatasetRegistry::new();
    registry.register(1, r.clone(), s.clone());
    let mut server = Server::start(
        "127.0.0.1:0",
        registry,
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    let per_pair = 60u64;
    let clients = 4u64;
    let per_client = per_pair * join.len() as u64 / clients;
    let all: Vec<Vec<JoinPair>> = std::thread::scope(|scope| {
        (0..clients)
            .map(|cid| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    let outcome = client.sample(request(1, l, per_client, 100 + cid)).unwrap();
                    assert_eq!(outcome.status, RequestStatus::Ok);
                    assert_eq!(outcome.pairs.len() as u64, per_client);
                    outcome.pairs
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });

    let expected_support: std::collections::HashSet<JoinPair> =
        join.iter().map(|&(a, b)| JoinPair::new(a, b)).collect();
    let mut freq: HashMap<JoinPair, usize> = HashMap::new();
    for pairs in &all {
        for p in pairs {
            let w = Rect::window(r[p.r as usize], l);
            assert!(w.contains(s[p.s as usize]), "non-join pair {p:?}");
            assert!(expected_support.contains(p));
            *freq.entry(*p).or_default() += 1;
        }
    }
    assert_eq!(freq.len(), join.len(), "some join pairs unreachable");
    let expected = (clients * per_client) as f64 / join.len() as f64;
    let chi2: f64 = expected_support
        .iter()
        .map(|p| {
            let obs = *freq.get(p).unwrap_or(&0) as f64;
            (obs - expected) * (obs - expected) / expected
        })
        .sum();
    let df = (join.len() - 1) as f64;
    let threshold = df + 6.0 * (2.0 * df).sqrt();
    assert!(
        chi2 < threshold,
        "networked samples biased: χ² = {chi2:.1} ≥ {threshold:.1}"
    );

    // distinct seeds produced distinct streams
    assert_ne!(all[0], all[1]);
    server.shutdown();
}

/// Error frames: unknown dataset ids answer `DONE{UnknownDataset}` with
/// zero samples — and the connection stays usable.
#[test]
fn unknown_dataset_gets_an_error_frame() {
    let pts = pseudo_points(50, 3, 30.0);
    let mut registry = DatasetRegistry::new();
    registry.register(1, pts.clone(), pts.clone());
    let mut server = Server::start("127.0.0.1:0", registry, ServerConfig::default()).unwrap();

    let mut client = Client::connect(server.local_addr()).unwrap();
    let outcome = client.sample(request(999, 4.0, 100, 1)).unwrap();
    assert_eq!(outcome.status, RequestStatus::UnknownDataset);
    assert!(outcome.pairs.is_empty());
    assert_eq!(outcome.stats.samples, 0);

    // same connection still serves the registered dataset
    let ok = client.sample(request(1, 4.0, 100, 1)).unwrap();
    assert_eq!(ok.status, RequestStatus::Ok);
    assert_eq!(ok.pairs.len(), 100);

    // and the error is visible in the server stats
    let stats: ServerStatsFrame = client.server_stats().unwrap();
    assert_eq!(stats.errors, 1);
    assert_eq!(stats.queries, 2);
    server.shutdown();
}

/// Forced algorithms round-trip: each algorithm byte reaches the
/// engine and the cache keys them apart.
#[test]
fn forced_algorithms_are_honoured_and_cached_separately() {
    let pts = pseudo_points(80, 5, 40.0);
    let mut registry = DatasetRegistry::new();
    registry.register(1, pts.clone(), pts.clone());
    let mut server = Server::start("127.0.0.1:0", registry, ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    for algorithm in [
        Some(Algorithm::Kds),
        Some(Algorithm::KdsRejection),
        Some(Algorithm::Bbst),
        None,
    ] {
        let outcome = client
            .sample(SampleRequest {
                algorithm,
                ..request(1, 5.0, 200, 9)
            })
            .unwrap();
        assert_eq!(outcome.status, RequestStatus::Ok, "{algorithm:?}");
        assert_eq!(outcome.pairs.len(), 200);
    }
    let stats = client.server_stats().unwrap();
    assert_eq!(stats.cache_misses, 4, "each algorithm key builds once");
    assert_eq!(stats.engines_cached, 4);
    server.shutdown();
}

/// The backpressure contract: a client that stops reading stalls only
/// its own stream. While a slow reader's request is parked, a fast
/// client on the same (single-worker!) server completes many requests.
#[test]
fn slow_reader_stalls_only_its_own_connection() {
    let pts = pseudo_points(200, 7, 60.0);
    let mut registry = DatasetRegistry::new();
    registry.register(1, pts.clone(), pts.clone());
    // One worker and a tiny response queue: if the slow consumer could
    // block the pool, the fast client below would hang with it.
    let mut server = Server::start(
        "127.0.0.1:0",
        registry,
        ServerConfig {
            workers: 1,
            queue_frames: 2,
            batch_pairs: 512,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    let slow_parked = &AtomicBool::new(false);
    let fast_done = &AtomicBool::new(false);
    std::thread::scope(|scope| {
        scope.spawn(move || {
            let mut slow = Client::connect(addr).unwrap();
            // A huge request whose batches we drain at a crawl: after
            // the first batch, sleep until the fast client finished.
            let outcome = slow
                .sample_with(request(1, 6.0, 300_000, 11), |_batch| {
                    slow_parked.store(true, Ordering::Release);
                    let start = Instant::now();
                    while !fast_done.load(Ordering::Acquire)
                        && start.elapsed() < Duration::from_secs(30)
                    {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                })
                .unwrap();
            assert_eq!(outcome.status, RequestStatus::Ok);
        });
        // Wait until the slow stream is provably in flight.
        while !slow_parked.load(Ordering::Acquire) {
            std::thread::sleep(Duration::from_millis(1));
        }
        let mut fast = Client::connect(addr).unwrap();
        let start = Instant::now();
        for i in 0..20 {
            let outcome = fast.sample(request(1, 6.0, 2_000, 50 + i)).unwrap();
            assert_eq!(outcome.status, RequestStatus::Ok);
            assert_eq!(outcome.pairs.len(), 2_000);
        }
        // 20 × 2k samples through the single worker while the slow
        // stream sits parked: seconds of budget, fails in minutes if
        // the worker were stuck on the slow connection.
        assert!(
            start.elapsed() < Duration::from_secs(20),
            "fast client starved behind a slow reader: {:?}",
            start.elapsed()
        );
        fast_done.store(true, Ordering::Release);
    });
    server.shutdown();
}

/// Graceful shutdown joins every spawned thread — including with
/// clients mid-stream — and is idempotent. `shutdown()` returning at
/// all is the no-leak guarantee (it joins acceptor, workers, and every
/// connection thread); afterwards the port no longer accepts.
#[test]
fn shutdown_is_clean_with_clients_in_flight() {
    let pts = pseudo_points(150, 9, 50.0);
    let mut registry = DatasetRegistry::new();
    registry.register(1, pts.clone(), pts.clone());
    let mut server = Server::start("127.0.0.1:0", registry, ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    // Park a huge request mid-stream by (almost) not reading it.
    let mut hanging = Client::connect(addr).unwrap();
    let started = &AtomicBool::new(false);
    let released = &AtomicBool::new(false);
    std::thread::scope(|scope| {
        scope.spawn(|| {
            let _ = hanging.sample_with(request(1, 6.0, 50_000_000, 13), |_batch| {
                started.store(true, Ordering::Release);
                // stop reading until the shutdown below has happened:
                // the request parks server-side
                let begin = Instant::now();
                while !released.load(Ordering::Acquire) && begin.elapsed() < Duration::from_secs(30)
                {
                    std::thread::sleep(Duration::from_millis(2));
                }
            });
        });
        while !started.load(Ordering::Acquire) {
            std::thread::sleep(Duration::from_millis(1));
        }
        // Joins acceptor + workers + connection threads; a leaked or
        // deadlocked thread would hang the test here forever.
        server.shutdown();
        server.shutdown(); // idempotent
        released.store(true, Ordering::Release);
        assert!(
            std::net::TcpStream::connect(addr).is_err(),
            "listener survived shutdown"
        );
        // the hanging client's next read fails on the closed socket;
        // the scoped thread joins here
    });
}

/// A `SHUTDOWN` control frame from a client takes the whole server
/// down (the remote-operations path `srj-loadgen --shutdown` uses).
#[test]
fn remote_shutdown_frame_stops_the_server() {
    let pts = pseudo_points(50, 15, 30.0);
    let mut registry = DatasetRegistry::new();
    registry.register(1, pts.clone(), pts.clone());
    let mut server = Server::start("127.0.0.1:0", registry, ServerConfig::default()).unwrap();
    let addr = server.local_addr();
    let mut client = Client::connect(addr).unwrap();
    client.shutdown_server().unwrap();
    server.wait_shutdown(); // returns because the flag is set remotely
    server.shutdown();
    assert!(std::net::TcpStream::connect(addr).is_err());
}
