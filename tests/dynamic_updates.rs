//! Integration tests for epoch-versioned dynamic datasets: statistical
//! uniformity with pending deltas (between rebuilds) and after epoch
//! swaps, in-flight handles surviving swaps, and the
//! rejection-rate-driven re-planning hot-swap.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::thread;

use srj::{
    Algorithm, DatasetSnapshot, EpochConfig, EpochEngine, JoinPair, Point, Rect, SampleConfig,
};

fn pseudo_points(n: usize, seed: u64, extent: f64) -> Vec<Point> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n)
        .map(|_| Point::new(next() * extent, next() * extent))
        .collect()
}

/// Brute-force live join of a snapshot, by (epoch-relative) ids.
fn live_join(snap: &DatasetSnapshot, l: f64) -> Vec<JoinPair> {
    let mut out = Vec::new();
    for (rid, rp) in snap.live_r() {
        let w = Rect::window(rp, l);
        for (sid, sp) in snap.live_s() {
            if w.contains(sp) {
                out.push(JoinPair::new(rid, sid));
            }
        }
    }
    out
}

/// Chi-squared uniformity over the exact pair space (the same
/// Wilson–Hilferty p ≈ 0.001 cutoff as tests/uniformity.rs).
fn assert_uniform(counts: &HashMap<JoinPair, u64>, join: &[JoinPair], draws: u64, what: &str) {
    let k = join.len() as f64;
    let expected = draws as f64 / k;
    assert!(expected >= 5.0, "{what}: test underpowered ({expected})");
    let chi2: f64 = join
        .iter()
        .map(|p| {
            let o = *counts.get(p).unwrap_or(&0) as f64;
            (o - expected) * (o - expected) / expected
        })
        .sum();
    let dof = k - 1.0;
    let z = 3.09;
    let cut = dof * (1.0 - 2.0 / (9.0 * dof) + z * (2.0 / (9.0 * dof)).sqrt()).powi(3);
    assert!(
        chi2 < cut,
        "{what}: chi2 {chi2:.1} over cutoff {cut:.1} (dof {dof})"
    );
}

fn draw_and_check(engine: &EpochEngine, l: f64, seed: u64, what: &str) {
    let snap = engine.store().snapshot();
    let join = live_join(&snap, l);
    assert!(
        join.len() > 30,
        "{what}: workload too sparse ({})",
        join.len()
    );
    let join_set: std::collections::HashSet<JoinPair> = join.iter().copied().collect();
    let draws = (join.len() as u64 * 60).max(20_000);
    let mut h = engine.handle_seeded(seed);
    let mut counts: HashMap<JoinPair, u64> = HashMap::new();
    for _ in 0..draws {
        let p = h.sample_one().unwrap();
        assert!(
            join_set.contains(&p),
            "{what}: emitted dead or non-join pair {p:?}"
        );
        *counts.entry(p).or_insert(0) += 1;
    }
    assert_uniform(&counts, &join, draws, what);
}

/// Uniformity must hold with pending deltas (served through the
/// overlay, *between* rebuilds) and again after the epoch swap folds
/// them in — for every algorithm.
#[test]
fn uniform_with_pending_deltas_and_after_epoch_swap() {
    let l = 6.0;
    let cfg = SampleConfig::new(l);
    for (i, algo) in [Algorithm::Kds, Algorithm::KdsRejection, Algorithm::Bbst]
        .into_iter()
        .enumerate()
    {
        let seed = 1000 + i as u64 * 10;
        let r = pseudo_points(60, seed, 50.0);
        let s = pseudo_points(80, seed + 1, 50.0);
        // Thresholds high enough that the interleaved batches below
        // stay pending (overlay-served) until we force the swap — the
        // tombstone-only trigger would otherwise fire on the delete
        // batches.
        let engine = EpochEngine::new(
            r,
            s,
            &cfg,
            EpochConfig::default()
                .with_algorithm(algo)
                .with_rebuild_fraction(0.9)
                .with_tombstone_rebuild_fraction(0.9),
        );

        // Interleaved insert/delete batches on both sides.
        for (j, p) in pseudo_points(20, seed + 2, 50.0).into_iter().enumerate() {
            let rid = engine.insert_r(p);
            if j % 5 == 0 {
                assert!(engine.delete_r(rid), "fresh insert must be deletable");
            }
        }
        for p in pseudo_points(25, seed + 3, 50.0) {
            engine.insert_s(p);
        }
        for id in (0..60u32).step_by(9) {
            assert!(engine.delete_r(id));
        }
        for id in (0..80u32).step_by(11) {
            assert!(engine.delete_s(id));
        }

        engine.refresh();
        assert_eq!(engine.epoch(), 0, "{algo}: deltas must stay pending");
        assert!(engine.engine().is_overlay(), "{algo}: expected overlay");
        draw_and_check(&engine, l, 7 + seed, &format!("{algo} pre-rebuild"));

        // Fold the deltas in: compact + rebuild = major epoch swap.
        engine.store().compact();
        engine.refresh();
        assert_eq!(engine.epoch(), 1, "{algo}: swap must bump the epoch");
        assert!(!engine.engine().is_overlay());
        assert_eq!(engine.algorithm(), algo, "pinned algorithm must survive");
        draw_and_check(&engine, l, 8 + seed, &format!("{algo} post-rebuild"));
    }
}

/// In-flight handles pinned to an old epoch must complete cleanly —
/// and stay correct against *their* epoch's id space — while inserts,
/// overlay swaps, and a full rebuild happen underneath them.
#[test]
fn in_flight_handles_survive_epoch_swaps() {
    const THREADS: usize = 4;
    const PER_THREAD: usize = 20_000;
    let l = 5.0;
    let r = pseudo_points(80, 21, 40.0);
    let s = pseudo_points(120, 22, 40.0);
    let engine = Arc::new(EpochEngine::new(
        r,
        s,
        &SampleConfig::new(l),
        EpochConfig::default().with_rebuild_fraction(0.05),
    ));

    let start = Arc::new(Barrier::new(THREADS + 1));
    let swapped = Arc::new(AtomicBool::new(false));
    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let engine = Arc::clone(&engine);
            let start = Arc::clone(&start);
            let swapped = Arc::clone(&swapped);
            thread::spawn(move || {
                // Pin a handle + its epoch's snapshot before any mutation.
                let snap = engine.store().snapshot();
                let mut h = engine.handle_seeded(100 + t as u64);
                start.wait();
                let mut drawn = 0usize;
                while drawn < PER_THREAD || !swapped.load(Ordering::Acquire) {
                    let p = h.sample_one().expect("pinned handle must keep serving");
                    let rp = snap.r_point(p.r).expect("id outside pinned epoch");
                    let sp = snap.s_point(p.s).expect("id outside pinned epoch");
                    assert!(Rect::window(rp, l).contains(sp));
                    drawn += 1;
                    if drawn > PER_THREAD * 100 {
                        panic!("swap flag never arrived");
                    }
                }
                drawn
            })
        })
        .collect();

    start.wait();
    // Mutate past the rebuild threshold while the workers sample.
    let before = engine.epoch();
    for p in pseudo_points(30, 23, 40.0) {
        engine.insert_r(p);
        engine.insert_s(Point::new(p.x * 0.9, p.y * 0.9));
    }
    engine.refresh(); // major swap: compaction renumbers ids
    assert!(engine.epoch() > before, "rebuild threshold must have fired");
    swapped.store(true, Ordering::Release);

    for w in workers {
        let drawn = w.join().expect("worker panicked");
        assert!(drawn >= PER_THREAD);
    }

    // New handles see the new epoch and its renumbered ids.
    let snap = engine.store().snapshot();
    let mut h = engine.handle_seeded(999);
    for _ in 0..2_000 {
        let p = h.sample_one().unwrap();
        let rp = snap.r_point(p.r).unwrap();
        let sp = snap.s_point(p.s).unwrap();
        assert!(Rect::window(rp, l).contains(sp));
    }
}

/// A forced rejection-rate divergence must hot-swap the algorithm
/// (KDS-rejection → BBST) through the epoch mechanism, without
/// interrupting a handle that was in flight when the swap happened.
#[test]
fn rejection_divergence_replans_the_algorithm() {
    // Dense uniform workload with tight 9-cell bounds: the planner
    // picks KDS-rejection (est. overhead ≈ 2.25).
    let l = 10.0;
    let r = pseudo_points(4_000, 61, 100.0);
    let s = pseudo_points(4_000, 62, 100.0);
    let engine = EpochEngine::new(
        r,
        s,
        &SampleConfig::new(l),
        EpochConfig::default()
            .with_rebuild_fraction(0.8) // keep the poison delta pending
            .with_replan_min_samples(500),
    );
    assert_eq!(engine.algorithm(), Algorithm::KdsRejection);
    let planned = engine
        .planned_overhead()
        .expect("auto epoch must record the estimate");

    // A handle in flight across everything that follows.
    let pinned_snap = engine.store().snapshot();
    let mut pinned = engine.handle_seeded(3);
    pinned.sample(100).unwrap();

    // Poison the workload: a far-away near-miss cluster. Every
    // inserted S point sits diagonally 1.9l from its R partner —
    // inside the 3×3 block, outside every window — so the overlay's
    // delta bounds are maximally loose and the *observed* overhead
    // blows past the planned estimate.
    for i in 0..3_000u64 {
        let x = 1_000.0 + (i % 50) as f64 * 3.0 * l;
        let y = 1_000.0 + (i / 50) as f64 * 3.0 * l;
        engine.insert_r(Point::new(x, y));
        engine.insert_s(Point::new(x + 1.9 * l, y + 1.9 * l));
    }

    // Sampling through the overlay measures the divergence.
    let mut h = engine.handle_seeded(4);
    h.sample(2_000).unwrap();
    assert!(engine.engine().is_overlay());
    let observed = engine
        .observed_rejection_rate()
        .expect("samples were drawn");
    assert!(
        observed > planned * 2.0,
        "poison failed: observed {observed:.2} vs planned {planned:.2}"
    );

    // The next refresh acts on the observation: re-plan + hot-swap.
    let epoch_before = engine.epoch();
    engine.refresh();
    assert_eq!(engine.replans(), 1, "divergence must trigger a re-plan");
    assert_eq!(
        engine.algorithm(),
        Algorithm::Bbst,
        "observed overhead {observed:.1} must swap KDS-rejection -> BBST"
    );
    assert!(engine.epoch() > epoch_before, "re-plan rides an epoch swap");
    assert_eq!(engine.engine().algorithm(), Algorithm::Bbst);

    // The pinned handle was never interrupted: still the old
    // algorithm, still serving its epoch's ids.
    assert_eq!(pinned.algorithm(), Algorithm::KdsRejection);
    for p in pinned.sample(500).unwrap() {
        let rp = pinned_snap.r_point(p.r).unwrap();
        let sp = pinned_snap.s_point(p.s).unwrap();
        assert!(Rect::window(rp, l).contains(sp));
    }

    // And the re-planned engine serves the folded-in dataset.
    let snap = engine.store().snapshot();
    assert!(snap.delta.is_empty(), "re-plan compacts the delta");
    let mut h2 = engine.handle_seeded(5);
    for p in h2.sample(1_000).unwrap() {
        let rp = snap.r_point(p.r).unwrap();
        let sp = snap.s_point(p.s).unwrap();
        assert!(Rect::window(rp, l).contains(sp));
    }
    // BBST's observed overhead is bounded again; no flip-flop.
    engine.refresh();
    assert_eq!(engine.replans(), 1);
    assert_eq!(engine.algorithm(), Algorithm::Bbst);
}

/// Like [`draw_and_check`] but through the buffered batch path
/// ([`srj::SamplerHandle::sample_batch`]): draws in uneven batches so
/// buffer refill boundaries and partial batches are both crossed, and
/// every emitted pair is validated against the **current** live join —
/// a stale buffered id would fail the membership check before it could
/// skew the chi-squared.
fn draw_batches_and_check(engine: &EpochEngine, l: f64, seed: u64, what: &str) {
    let snap = engine.store().snapshot();
    let join = live_join(&snap, l);
    assert!(
        join.len() > 30,
        "{what}: workload too sparse ({})",
        join.len()
    );
    let join_set: std::collections::HashSet<JoinPair> = join.iter().copied().collect();
    let draws = (join.len() as u64 * 60).max(20_000);
    let mut h = engine.handle_seeded(seed);
    let mut counts: HashMap<JoinPair, u64> = HashMap::new();
    let mut remaining = draws as usize;
    // 517 is deliberately coprime to the 256-id buffer capacity, so
    // batch ends and refill boundaries drift against each other.
    while remaining > 0 {
        let n = remaining.min(517);
        let pairs = h.sample_batch(n).unwrap();
        assert_eq!(pairs.len(), n, "{what}: short batch");
        for p in pairs {
            assert!(
                join_set.contains(&p),
                "{what}: emitted stale or non-join pair {p:?}"
            );
            *counts.entry(p).or_insert(0) += 1;
        }
        remaining -= n;
    }
    assert_uniform(&counts, &join, draws, what);
}

/// The buffered-draw suite: warm buffers with batch draws, mutate both
/// sides, draw through the pending overlay, force the epoch swap, and
/// draw again — at every stage each sample must belong to that stage's
/// live join (no stale buffered ids) and stay chi-squared uniform.
/// Runs every algorithm family; the buffer counters must show real
/// buffered traffic and the swap must charge an invalidation.
#[test]
fn buffered_batches_stay_uniform_across_mutations_and_swap() {
    let l = 6.0;
    let cfg = SampleConfig::new(l);
    for (i, algo) in [Algorithm::Kds, Algorithm::KdsRejection, Algorithm::Bbst]
        .into_iter()
        .enumerate()
    {
        let seed = 4000 + i as u64 * 10;
        let r = pseudo_points(60, seed, 50.0);
        let s = pseudo_points(80, seed + 1, 50.0);
        let engine = EpochEngine::new(
            r,
            s,
            &cfg,
            EpochConfig::default()
                .with_algorithm(algo)
                .with_rebuild_fraction(0.9)
                .with_tombstone_rebuild_fraction(0.9),
        );
        assert!(engine.buffers_enabled(), "{algo}: buffers default on");

        // Warm: batch draws on the fresh engine promote hot cells.
        draw_batches_and_check(&engine, l, seed + 7, &format!("{algo} buffered warm"));
        let (warm_hits, warm_refills, _) = engine.buffer_counters();

        // Mutate both sides past the warm buffers' world.
        for (j, p) in pseudo_points(20, seed + 2, 50.0).into_iter().enumerate() {
            let rid = engine.insert_r(p);
            if j % 5 == 0 {
                assert!(engine.delete_r(rid));
            }
        }
        for p in pseudo_points(25, seed + 3, 50.0) {
            engine.insert_s(p);
        }
        for id in (0..60u32).step_by(9) {
            assert!(engine.delete_r(id));
        }
        for id in (0..80u32).step_by(11) {
            assert!(engine.delete_s(id));
        }
        engine.refresh();
        assert_eq!(engine.epoch(), 0, "{algo}: deltas must stay pending");
        assert!(engine.engine().is_overlay());
        // Pending deltas serve through the overlay — batch draws must
        // reflect them immediately (a stale buffer would keep serving
        // the pre-mutation members).
        draw_batches_and_check(&engine, l, seed + 8, &format!("{algo} buffered overlay"));

        // Fold the deltas in: compact + rebuild = major epoch swap.
        engine.store().compact();
        engine.refresh();
        assert_eq!(engine.epoch(), 1, "{algo}: swap must bump the epoch");
        draw_batches_and_check(&engine, l, seed + 9, &format!("{algo} buffered post-swap"));

        let (hits, refills, invalidations) = engine.buffer_counters();
        assert!(
            warm_hits > 0 && warm_refills > 0,
            "{algo}: warm phase never hit a buffer ({warm_hits}/{warm_refills})"
        );
        assert!(
            hits > warm_hits,
            "{algo}: post-swap draws never hit a buffer"
        );
        assert!(refills >= warm_refills);
        assert!(
            invalidations >= 1,
            "{algo}: retiring the armed engine must charge an invalidation"
        );
    }
}

/// `PlanReport::buffers` mirrors the live engine flag, not the state
/// at plan time.
#[test]
fn plan_report_tracks_buffer_flag() {
    let r = pseudo_points(500, 81, 60.0);
    let s = pseudo_points(500, 82, 60.0);
    let engine = EpochEngine::new(r, s, &SampleConfig::new(6.0), EpochConfig::default());
    let plan = engine.engine().plan().expect("auto engine records a plan");
    assert!(plan.buffers, "buffers default on");
    engine.set_buffers_enabled(false);
    assert!(!engine.engine().plan().unwrap().buffers);
    engine.set_buffers_enabled(true);
    assert!(engine.engine().plan().unwrap().buffers);
}

/// Zero-sample and zero-iteration accessors return `None`, never NaN —
/// and never feed the re-plan trigger.
#[test]
fn rejection_rate_accessors_guard_zero_samples() {
    let r = pseudo_points(50, 71, 30.0);
    let s = pseudo_points(50, 72, 30.0);
    let engine = srj::Engine::auto(&r, &s, &SampleConfig::new(4.0));
    let h = engine.handle_seeded(0);
    assert_eq!(h.rejection_rate(), None, "zero-sample handle");
    let rate = engine.stats().rejection_rate();
    assert!(!rate.is_nan(), "zero-sample engine rate must not be NaN");
    assert_eq!(rate, 0.0, "zero-sample engine");

    let epoch = EpochEngine::new(r, s, &SampleConfig::new(4.0), EpochConfig::default());
    assert_eq!(epoch.observed_rejection_rate(), None);
    epoch.refresh();
    assert_eq!(epoch.replans(), 0);
}
