//! Statistical uniformity tests: on small, fully-enumerable joins, every
//! sampler's output frequencies must match the uniform distribution over
//! `J` (Definition 2's core requirement, Theorem 3 for BBST).
//!
//! Deterministic: fixed seeds, chi-square threshold with a wide margin
//! (mean + 6σ of the χ² distribution), so failures indicate real bias
//! rather than unlucky draws.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use srj::{
    BbstKdVariantSampler, BbstSampler, JoinPair, JoinSampler, JoinThenSample, KdsRejectionSampler,
    KdsSampler, MassMode, Point, SampleConfig,
};
use std::collections::HashMap;

fn pseudo_points(n: usize, seed: u64, extent: f64) -> Vec<Point> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n)
        .map(|_| Point::new(next() * extent, next() * extent))
        .collect()
}

/// Draws `per_pair * |J|` samples and checks the χ² statistic against
/// `df + 6·√(2·df)`.
fn assert_uniform_over_join(sampler: &mut dyn JoinSampler, r: &[Point], s: &[Point], l: f64) {
    let join = srj::join::nested_loop_join(r, s, l);
    assert!(join.len() > 10, "test join too small to be meaningful");
    let expected_support: std::collections::HashSet<JoinPair> =
        join.iter().map(|&(a, b)| JoinPair::new(a, b)).collect();

    let per_pair = 60usize;
    let draws = per_pair * join.len();
    let mut rng = SmallRng::seed_from_u64(0xC0FFEE);
    let samples = sampler.sample(draws, &mut rng).unwrap();

    let mut freq: HashMap<JoinPair, usize> = HashMap::new();
    for p in samples {
        assert!(
            expected_support.contains(&p),
            "{}: emitted a non-join pair {p:?}",
            sampler.name()
        );
        *freq.entry(p).or_default() += 1;
    }
    assert_eq!(
        freq.len(),
        join.len(),
        "{}: some join pairs are unreachable",
        sampler.name()
    );

    let expected = per_pair as f64;
    let chi2: f64 = expected_support
        .iter()
        .map(|p| {
            let obs = *freq.get(p).unwrap_or(&0) as f64;
            (obs - expected) * (obs - expected) / expected
        })
        .sum();
    let df = (join.len() - 1) as f64;
    let threshold = df + 6.0 * (2.0 * df).sqrt();
    assert!(
        chi2 < threshold,
        "{}: χ² = {chi2:.1} exceeds {threshold:.1} (df = {df})",
        sampler.name()
    );
}

fn test_sets() -> (Vec<Point>, Vec<Point>, f64) {
    // ~60 R × 90 S over a 60×60 domain with l = 6 gives a few hundred
    // join pairs spanning all three cell cases.
    (
        pseudo_points(60, 101, 60.0),
        pseudo_points(90, 102, 60.0),
        6.0,
    )
}

#[test]
fn kds_is_uniform() {
    let (r, s, l) = test_sets();
    let mut sampler = KdsSampler::build(&r, &s, &SampleConfig::new(l));
    assert_uniform_over_join(&mut sampler, &r, &s, l);
}

#[test]
fn kds_rejection_is_uniform() {
    let (r, s, l) = test_sets();
    let mut sampler = KdsRejectionSampler::build(&r, &s, &SampleConfig::new(l));
    assert_uniform_over_join(&mut sampler, &r, &s, l);
}

#[test]
fn bbst_is_uniform_virtual_mass() {
    let (r, s, l) = test_sets();
    let mut sampler = BbstSampler::build(&r, &s, &SampleConfig::new(l));
    assert_uniform_over_join(&mut sampler, &r, &s, l);
}

#[test]
fn bbst_is_uniform_exact_mass() {
    let (r, s, l) = test_sets();
    let cfg = SampleConfig::new(l).with_mass_mode(MassMode::Exact);
    let mut sampler = BbstSampler::build(&r, &s, &cfg);
    assert_uniform_over_join(&mut sampler, &r, &s, l);
}

#[test]
fn bbst_is_uniform_with_fractional_cascading() {
    let (r, s, l) = test_sets();
    let cfg = SampleConfig::new(l).with_cascading();
    let mut sampler = BbstSampler::build(&r, &s, &cfg);
    assert_uniform_over_join(&mut sampler, &r, &s, l);
}

#[test]
fn rangetree_sampler_is_uniform() {
    let (r, s, l) = test_sets();
    let mut sampler = srj::RangeTreeSampler::build(&r, &s, &SampleConfig::new(l));
    assert_uniform_over_join(&mut sampler, &r, &s, l);
}

#[test]
fn bbst_kd_variant_is_uniform() {
    let (r, s, l) = test_sets();
    let mut sampler = BbstKdVariantSampler::build(&r, &s, &SampleConfig::new(l));
    assert_uniform_over_join(&mut sampler, &r, &s, l);
}

#[test]
fn join_then_sample_is_uniform() {
    let (r, s, l) = test_sets();
    let mut sampler = JoinThenSample::build(&r, &s, &SampleConfig::new(l));
    assert_uniform_over_join(&mut sampler, &r, &s, l);
}

/// Uniformity must also hold on clustered data, where cell populations
/// are wildly skewed and the alias weights span orders of magnitude.
#[test]
fn bbst_is_uniform_on_skewed_data() {
    let mut r = pseudo_points(30, 201, 10.0); // dense clump
    r.extend(pseudo_points(20, 202, 80.0)); // sparse spread
    let mut s = pseudo_points(50, 203, 10.0);
    s.extend(pseudo_points(30, 204, 80.0));
    let l = 4.0;
    let mut sampler = BbstSampler::build(&r, &s, &SampleConfig::new(l));
    assert_uniform_over_join(&mut sampler, &r, &s, l);
}

/// Duplicate coordinates exercise the BBST's equal-key `B` lists.
#[test]
fn bbst_is_uniform_with_duplicate_coordinates() {
    let mut r = Vec::new();
    let mut s = Vec::new();
    for i in 0..8 {
        for _ in 0..3 {
            r.push(Point::new(i as f64 * 2.0, 5.0));
            s.push(Point::new(i as f64 * 2.0, 5.5));
            s.push(Point::new(i as f64 * 2.0 + 0.5, 4.5));
        }
    }
    let l = 3.0;
    let mut sampler = BbstSampler::build(&r, &s, &SampleConfig::new(l));
    assert_uniform_over_join(&mut sampler, &r, &s, l);
}
