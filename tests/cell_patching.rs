//! Cell-granular S-side maintenance: patch-based epoch swaps rebuild
//! only the dirty cells (clean cells are `Arc`-shared across epochs,
//! proven by pointer identity), samples stay exactly uniform after a
//! partial patch for all three algorithms, delete-only workloads
//! shrink `Σµ`, and per-cell rejection feedback drives targeted
//! repairs.

use std::collections::{HashMap, HashSet};

use srj::{
    Algorithm, DatasetSnapshot, EpochConfig, EpochEngine, JoinPair, Point, Rect, SampleConfig,
};

fn pseudo_points(n: usize, seed: u64, extent: f64) -> Vec<Point> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n)
        .map(|_| Point::new(next() * extent, next() * extent))
        .collect()
}

/// Brute-force live join of a snapshot, by (epoch-relative) ids — dead
/// ids excluded by `live_r`/`live_s`.
fn live_join(snap: &DatasetSnapshot, l: f64) -> Vec<JoinPair> {
    let mut out = Vec::new();
    for (rid, rp) in snap.live_r() {
        let w = Rect::window(rp, l);
        for (sid, sp) in snap.live_s() {
            if w.contains(sp) {
                out.push(JoinPair::new(rid, sid));
            }
        }
    }
    out
}

/// Chi-squared uniformity over the exact pair space (the same
/// Wilson–Hilferty p ≈ 0.001 cutoff as tests/uniformity.rs).
fn assert_uniform(counts: &HashMap<JoinPair, u64>, join: &[JoinPair], draws: u64, what: &str) {
    let k = join.len() as f64;
    let expected = draws as f64 / k;
    assert!(expected >= 5.0, "{what}: test underpowered ({expected})");
    let chi2: f64 = join
        .iter()
        .map(|p| {
            let o = *counts.get(p).unwrap_or(&0) as f64;
            (o - expected) * (o - expected) / expected
        })
        .sum();
    let dof = k - 1.0;
    let z = 3.09;
    let cut = dof * (1.0 - 2.0 / (9.0 * dof) + z * (2.0 / (9.0 * dof)).sqrt()).powi(3);
    assert!(
        chi2 < cut,
        "{what}: chi2 {chi2:.1} over cutoff {cut:.1} (dof {dof})"
    );
}

/// The PR's acceptance criterion, per algorithm: an epoch swap whose
/// dirty-cell set is ≤ 10% of the S-side cells must rebuild **only**
/// those cells — every clean cell's structure crosses the epoch by
/// `Arc` identity — and the cells-patched counter must record exactly
/// the dirty work. Samples drawn after the patch are chi-squared
/// uniform over the live join.
#[test]
fn patch_swap_rebuilds_only_dirty_cells_and_stays_uniform() {
    let l = 5.0;
    let cfg = SampleConfig::new(l);
    for (i, algo) in [Algorithm::Kds, Algorithm::KdsRejection, Algorithm::Bbst]
        .into_iter()
        .enumerate()
    {
        let seed = 3000 + i as u64 * 10;
        let r = pseudo_points(80, seed, 60.0);
        let s = pseudo_points(600, seed + 1, 60.0);
        let engine = EpochEngine::new(
            r,
            s.clone(),
            &cfg,
            EpochConfig::default()
                .with_algorithm(algo)
                // One mutation crosses the threshold: the swap below is
                // deliberate, not incidental.
                .with_rebuild_fraction(1e-4),
        );
        let tokens_before: HashMap<(i32, i32), usize> = engine
            .engine()
            .s_cell_tokens()
            .expect("base engine must expose cell tokens")
            .into_iter()
            .collect();
        let total_cells = tokens_before.len();
        assert!(total_cells >= 30, "{algo}: dataset too coarse");

        // A small S delta: two inserts into one corner, two deletes
        // elsewhere (plus an R insert, which never dirties S cells).
        engine.insert_s(Point::new(1.0, 1.0));
        engine.insert_s(Point::new(1.5, 1.5));
        let del_a = 7u32;
        let del_b = 450u32;
        assert!(engine.delete_s(del_a));
        assert!(engine.delete_s(del_b));
        engine.insert_r(Point::new(30.0, 30.0));

        let pre = engine.store().snapshot();
        let dirty = pre.delta.dirty_s_cells(&pre.base_s, l);
        assert!(
            dirty.len() * 10 <= total_cells,
            "{algo}: scenario must stay within the 10% dirty budget \
             ({} dirty of {total_cells})",
            dirty.len()
        );

        engine.refresh();
        assert_eq!(engine.epoch(), 1, "{algo}: threshold must swap");
        assert_eq!(engine.major_swaps(), 1);
        assert_eq!(
            engine.patch_swaps(),
            1,
            "{algo}: the swap must take the cell-patch path"
        );
        let patched = engine.cells_patched();
        assert!(
            patched > 0 && patched as usize <= dirty.len(),
            "{algo}: cells-patched counter {patched} vs {} dirty cells",
            dirty.len()
        );

        // Clean cells crossed the epoch by Arc identity; dirty ones
        // were rebuilt.
        let tokens_after = engine
            .engine()
            .s_cell_tokens()
            .expect("patched engine must expose cell tokens");
        let mut shared = 0usize;
        for (coord, token) in &tokens_after {
            match tokens_before.get(coord) {
                Some(old) if !dirty.contains(coord) => {
                    assert_eq!(token, old, "{algo}: clean cell {coord:?} was rebuilt");
                    shared += 1;
                }
                Some(old) if dirty.contains(coord) => {
                    assert_ne!(token, old, "{algo}: dirty cell {coord:?} was shared");
                }
                _ => assert!(
                    dirty.contains(coord),
                    "{algo}: unexpected fresh cell {coord:?}"
                ),
            }
        }
        assert!(
            shared >= total_cells - dirty.len(),
            "{algo}: only {shared} of {} clean cells shared",
            total_cells - dirty.len()
        );

        // Exact uniformity over the live join of the patched epoch
        // (stable S ids, renumbered R ids, dead ids invisible).
        let snap = engine.store().snapshot();
        assert!(snap.s_dead.contains(&del_a) && snap.s_dead.contains(&del_b));
        let join = live_join(&snap, l);
        assert!(join.len() > 30, "{algo}: workload too sparse");
        let join_set: HashSet<JoinPair> = join.iter().copied().collect();
        let draws = (join.len() as u64 * 60).max(20_000);
        let mut h = engine.handle_seeded(9 + seed);
        let mut counts: HashMap<JoinPair, u64> = HashMap::new();
        for _ in 0..draws {
            let p = h.sample_one().unwrap();
            assert!(
                join_set.contains(&p),
                "{algo}: emitted dead or non-join pair {p:?}"
            );
            *counts.entry(p).or_insert(0) += 1;
        }
        assert_uniform(&counts, &join, draws, &format!("{algo} post-patch"));
    }
}

/// Consecutive patch swaps keep sharing: a second patch must share the
/// cells the first patch rebuilt (they are clean the second time).
#[test]
fn consecutive_patches_share_previously_patched_cells() {
    let l = 4.0;
    let engine = EpochEngine::new(
        pseudo_points(50, 77, 50.0),
        pseudo_points(400, 78, 50.0),
        &SampleConfig::new(l),
        EpochConfig::default()
            .with_algorithm(Algorithm::Bbst)
            .with_rebuild_fraction(1e-4),
    );
    engine.insert_s(Point::new(2.0, 2.0));
    engine.refresh();
    assert_eq!(engine.patch_swaps(), 1);
    let tokens_mid: HashMap<(i32, i32), usize> = engine
        .engine()
        .s_cell_tokens()
        .unwrap()
        .into_iter()
        .collect();

    // Second patch, far away from the first.
    engine.insert_s(Point::new(45.0, 45.0));
    engine.refresh();
    assert_eq!(engine.patch_swaps(), 2);
    let tokens_after = engine.engine().s_cell_tokens().unwrap();
    let far_coord = (
        (2.0f64 / l).floor() as i32, //
        (2.0f64 / l).floor() as i32,
    );
    let shared_first_patch_cell = tokens_after
        .iter()
        .find(|(c, _)| *c == far_coord)
        .map(|(c, t)| tokens_mid.get(c) == Some(t));
    assert_eq!(
        shared_first_patch_cell,
        Some(true),
        "the cell patched first must be shared by the second patch"
    );
}

/// Targeted repair: a workload whose corner cells hold short buckets
/// makes the Virtual mass maximally loose (cap-sized bounds over
/// 1-point cells ⇒ dud-slot rejections). The per-cell counters must
/// name those cells, and one repair pass must re-tighten them to exact
/// mass — shrinking Σµ and the rejection rate — without an epoch swap
/// or algorithm change.
#[test]
fn per_cell_feedback_drives_targeted_repair() {
    let l = 5.0;
    let n = 25usize;
    // r_i at a cell center; its only partner s_i diagonally 0.8l away,
    // in the corner cell — a 1-point cell whose Virtual bound is the
    // full bucket capacity.
    let mut r = Vec::new();
    let mut s = Vec::new();
    for i in 0..n {
        let x = (5 * i) as f64 * l + 0.5 * l;
        let y = 0.5 * l;
        r.push(Point::new(x, y));
        s.push(Point::new(x + 0.8 * l, y + 0.8 * l));
    }
    let engine = EpochEngine::new(
        r.clone(),
        s.clone(),
        &SampleConfig::new(l),
        EpochConfig::default()
            .with_algorithm(Algorithm::Bbst)
            .with_repair_factor(1.0)
            .with_replan_min_samples(256)
            .with_repair_min_cell_rejections(8),
    );
    let mu_before = engine.total_weight();
    assert!(
        mu_before > 2.0 * n as f64,
        "construction failed: Σµ {mu_before} not loose over |J| = {n}"
    );

    // Sampling measures the looseness and attributes every rejection
    // to its corner cell.
    let mut h = engine.handle_seeded(11);
    h.sample(4_000).unwrap();
    let observed = engine.observed_rejection_rate().unwrap();
    assert!(observed > 2.0, "dud slots must reject: observed {observed}");
    let rejections = engine
        .cell_rejections()
        .expect("BBST engine must track per-cell rejections");
    assert!(
        rejections.iter().filter(|&&c| c >= 8).count() >= n / 2,
        "rejections must concentrate on the corner cells"
    );

    let epoch_before = engine.epoch();
    engine.refresh();
    assert_eq!(engine.repairs(), 1, "feedback must trigger a repair");
    assert_eq!(engine.replans(), 0, "repair must pre-empt re-planning");
    assert_eq!(engine.epoch(), epoch_before, "repair is not an epoch swap");
    assert_eq!(engine.algorithm(), Algorithm::Bbst);
    let mu_after = engine.total_weight();
    assert!(
        mu_after < mu_before / 2.0,
        "exact-mass repair must tighten Σµ: {mu_before} -> {mu_after}"
    );

    // The repaired engine still serves the exact join, with a far
    // better acceptance rate.
    let mut h2 = engine.handle_seeded(12);
    let pairs = h2.sample(2_000).unwrap();
    for p in pairs {
        let w = Rect::window(r[p.r as usize], l);
        assert!(w.contains(s[p.s as usize]));
    }
    let post = h2.rejection_rate().unwrap();
    assert!(
        post < observed / 2.0,
        "repair must cut the rejection rate: {observed:.2} -> {post:.2}"
    );
}

/// A fruitless repair (no per-cell knob to turn) retires the repair
/// rung instead of looping, so the ladder can escalate to re-planning.
#[test]
fn repair_exhaustion_escalates_cleanly() {
    let l = 5.0;
    let n = 20usize;
    let mut r = Vec::new();
    let mut s = Vec::new();
    for i in 0..n {
        let x = (5 * i) as f64 * l + 0.5 * l;
        r.push(Point::new(x, 0.5 * l));
        s.push(Point::new(x + 0.8 * l, 1.3 * l));
    }
    // Pinned KDS-rejection: per-cell counters exist for the S-side, but
    // the algorithm has no per-cell repair knob.
    let engine = EpochEngine::new(
        r,
        s,
        &SampleConfig::new(l),
        EpochConfig::default()
            .with_algorithm(Algorithm::KdsRejection)
            .with_repair_factor(1.0)
            .with_replan_min_samples(128),
    );
    engine.handle_seeded(5).sample(2_000).unwrap();
    engine.refresh();
    assert_eq!(engine.repairs(), 0, "nothing is repairable");
    // Pinned: no re-plan either; the engine keeps serving.
    assert_eq!(engine.replans(), 0);
    assert!(engine.handle_seeded(6).sample(100).is_ok());
}
